//! The serving layer's job specification: a figure sweep (or an ad-hoc
//! benches × policies sweep) as a JSON document.
//!
//! This is the contract between `mlpsim-client`, `mlpsim-serve`, and the
//! write-ahead job journal: a spec parses from JSON ([`JobSpec::from_json`],
//! using the dependency-free `telemetry::json` parser), re-encodes
//! canonically ([`JobSpec::to_json`]) for journaling, and executes through
//! the *same* [`crate::figures`] run path the CLI binaries use — so a
//! submitted job's result is byte-identical to the direct invocation.
//!
//! ```json
//! {"kind":"fig5","accesses":4000,"seed":42,"jobs":2}
//! {"kind":"sweep","benches":["mcf","art"],"policies":["lru","lin(4)"],
//!  "accesses":4000,"deadline_ms":60000}
//! ```
//!
//! Every field but `kind` is optional: `accesses` defaults to
//! [`crate::runner::DEFAULT_ACCESSES`], `seed` to
//! [`crate::runner::DEFAULT_SEED`], `jobs` to 1 (a server runs many jobs;
//! width is an explicit opt-in), `deadline_ms` to none. A `sweep` without
//! `benches`/`policies` covers all 14 benchmarks under LRU and LIN(4).

use crate::figures::{try_fig5_report, try_sweep_report};
use crate::runner::{CellSpanSink, RunOptions, DEFAULT_ACCESSES, DEFAULT_SEED};
use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_exec::{CancelToken, Cancelled, WorkerPool};
use mlpsim_model::characterize::{profile_trace, CharacterizeConfig};
use mlpsim_model::plan::{score_cell, DEFAULT_PRUNE_MARGIN};
use mlpsim_telemetry::{Json, SinkHandle};
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

/// What a job computes.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// The paper's Figure 5 sweep (all benchmarks, LRU vs LIN(4)).
    Fig5,
    /// An ad-hoc benches × policies sweep with headline aggregates.
    Sweep {
        /// Benchmarks to run, in row order.
        benches: Vec<SpecBench>,
        /// Policies per benchmark, in column order.
        policies: Vec<PolicyKind>,
    },
}

/// One parsed job submission.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// What to compute.
    pub kind: JobKind,
    /// Memory accesses per benchmark run.
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads the job's own sweep may use (never changes bytes).
    pub jobs: usize,
    /// Wall-clock budget; the server cancels the job once exceeded.
    pub deadline_ms: Option<u64>,
}

/// Parse a policy name as accepted in a `sweep` spec's `policies` array.
pub fn policy_from_name(name: &str, seed: u64) -> Option<PolicyKind> {
    match name {
        "lru" => Some(PolicyKind::Lru),
        "fifo" => Some(PolicyKind::Fifo),
        "random" => Some(PolicyKind::Random { seed }),
        "lin" | "lin4" | "lin(4)" => Some(PolicyKind::lin4()),
        "sbar" => Some(PolicyKind::sbar_default()),
        "cbs-local" => Some(PolicyKind::CbsLocal),
        "cbs-global" => Some(PolicyKind::CbsGlobal),
        _ => name
            .strip_prefix("lin(")
            .and_then(|rest| rest.strip_suffix(')'))
            .and_then(|n| n.parse::<u32>().ok())
            .map(|lambda| PolicyKind::Lin { lambda }),
    }
}

/// Read the optional `"prune_margin"` field an `/estimate` submission may
/// carry alongside the normal spec fields ([`JobSpec::from_json`] ignores
/// unknown fields, so one body serves both endpoints). Defaults to
/// [`DEFAULT_PRUNE_MARGIN`].
///
/// # Errors
///
/// A human-readable message when the field is present but not a finite
/// non-negative number; the server returns it verbatim in the 400 body.
pub fn prune_margin_from_json(v: &Json) -> Result<f64, String> {
    match v.get("prune_margin") {
        None => Ok(DEFAULT_PRUNE_MARGIN),
        Some(n) => match n.as_f64() {
            Some(m) if m.is_finite() && m >= 0.0 => Ok(m),
            _ => Err("\"prune_margin\" wants a finite non-negative number".into()),
        },
    }
}

/// The canonical spelling [`JobSpec::to_json`] uses for a policy — the
/// subset of [`PolicyKind::label`] values [`policy_from_name`] accepts.
fn policy_name(p: &PolicyKind) -> String {
    match p {
        PolicyKind::Lin { lambda } => format!("lin({lambda})"),
        PolicyKind::Sbar(_) => "sbar".to_string(),
        other => other.label(),
    }
}

impl JobSpec {
    /// Parse a submission body.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field; the server
    /// returns it verbatim in the 400 body.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let kind_name = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("spec needs a string \"kind\" field (\"fig5\" or \"sweep\")")?;
        let accesses = match v.get("accesses") {
            None => DEFAULT_ACCESSES,
            Some(n) => match n.as_u64() {
                Some(n) if n >= 1 => usize::try_from(n)
                    .map_err(|_| "\"accesses\" does not fit this platform".to_string())?,
                _ => return Err("\"accesses\" wants a positive integer".into()),
            },
        };
        let seed = match v.get("seed") {
            None => DEFAULT_SEED,
            Some(n) => n.as_u64().ok_or("\"seed\" wants a non-negative integer")?,
        };
        let jobs = match v.get("jobs") {
            None => 1,
            Some(n) => match n.as_u64() {
                Some(n) if n >= 1 => usize::try_from(n)
                    .map_err(|_| "\"jobs\" does not fit this platform".to_string())?,
                _ => return Err("\"jobs\" wants a positive integer".into()),
            },
        };
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(n) => Some(
                n.as_u64()
                    .ok_or("\"deadline_ms\" wants a non-negative integer")?,
            ),
        };
        let kind = match kind_name {
            "fig5" => JobKind::Fig5,
            "sweep" => {
                let benches = match v.get("benches") {
                    None => SpecBench::ALL.to_vec(),
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            let name =
                                item.as_str().ok_or("\"benches\" wants an array of names")?;
                            out.push(SpecBench::from_name(name).ok_or_else(|| {
                                let known: Vec<&str> =
                                    SpecBench::ALL.iter().map(|b| b.name()).collect();
                                format!("unknown benchmark {name:?}; known: {}", known.join(", "))
                            })?);
                        }
                        out
                    }
                    Some(_) => return Err("\"benches\" wants an array of names".into()),
                };
                let policies = match v.get("policies") {
                    None => vec![PolicyKind::Lru, PolicyKind::lin4()],
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            let name = item
                                .as_str()
                                .ok_or("\"policies\" wants an array of names")?;
                            out.push(policy_from_name(name, seed).ok_or_else(|| {
                                format!(
                                    "unknown policy {name:?}; known: lru, fifo, random, \
                                     lin(N), sbar, cbs-local, cbs-global"
                                )
                            })?);
                        }
                        out
                    }
                    Some(_) => return Err("\"policies\" wants an array of names".into()),
                };
                if benches.is_empty() || policies.is_empty() {
                    return Err("a sweep needs at least one benchmark and one policy".into());
                }
                JobKind::Sweep { benches, policies }
            }
            other => {
                return Err(format!(
                    "unknown job kind {other:?} (want \"fig5\" or \"sweep\")"
                ))
            }
        };
        Ok(JobSpec {
            kind,
            accesses,
            seed,
            jobs,
            deadline_ms,
        })
    }

    /// Parse a raw submission body (bytes of a JSON document).
    ///
    /// # Errors
    ///
    /// See [`JobSpec::from_json`]; malformed JSON reports the parser's
    /// byte offset.
    pub fn parse(body: &str) -> Result<JobSpec, String> {
        let v = Json::parse(body).map_err(|e| e.to_string())?;
        JobSpec::from_json(&v)
    }

    /// Canonical re-encoding — what the journal stores and the status
    /// endpoint echoes. `from_json(to_json(s))` is an identity on the
    /// canonical form (field order and defaults pinned).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        match &self.kind {
            JobKind::Fig5 => pairs.push(("kind".into(), Json::Str("fig5".into()))),
            JobKind::Sweep { benches, policies } => {
                pairs.push(("kind".into(), Json::Str("sweep".into())));
                pairs.push((
                    "benches".into(),
                    Json::Arr(
                        benches
                            .iter()
                            .map(|b| Json::Str(b.name().to_string()))
                            .collect(),
                    ),
                ));
                pairs.push((
                    "policies".into(),
                    Json::Arr(policies.iter().map(|p| Json::Str(policy_name(p))).collect()),
                ));
            }
        }
        pairs.push(("accesses".into(), Json::Num(self.accesses as f64)));
        pairs.push(("seed".into(), Json::Num(self.seed as f64)));
        pairs.push(("jobs".into(), Json::Num(self.jobs as f64)));
        if let Some(d) = self.deadline_ms {
            pairs.push(("deadline_ms".into(), Json::Num(d as f64)));
        }
        Json::Obj(pairs)
    }

    /// The benches × policies grid this spec would simulate, in the
    /// bench-major order the run path uses.
    fn grid(&self) -> (Vec<SpecBench>, Vec<PolicyKind>) {
        match &self.kind {
            JobKind::Fig5 => (
                SpecBench::ALL.to_vec(),
                vec![PolicyKind::Lru, PolicyKind::lin4()],
            ),
            JobKind::Sweep { benches, policies } => (benches.clone(), policies.clone()),
        }
    }

    /// Score every cell of the spec's grid with the analytical model —
    /// **no simulation runs**. Returns a document whose `"model": true`
    /// field labels it as an estimate, with per-cell predicted miss rate,
    /// stated error band, delta vs the incumbent (the first policy), and
    /// the prune verdict at `margin`.
    pub fn estimate_doc(&self, margin: f64) -> Json {
        let (benches, policies) = self.grid();
        let pool = WorkerPool::new(self.jobs);
        let (accesses, seed) = (self.accesses, self.seed);
        let traces: Vec<Arc<Trace>> = pool.map_ordered(
            benches
                .iter()
                .map(|&b| move || Arc::new(b.generate(accesses, seed)))
                .collect(),
        );
        let profiles = pool.map_ordered(
            traces
                .iter()
                .map(|t| {
                    let t = Arc::clone(t);
                    move || profile_trace(&t, &CharacterizeConfig::baseline())
                })
                .collect(),
        );
        let geometry = Geometry::baseline_l2();
        let mut cells = Vec::with_capacity(benches.len() * policies.len());
        let mut pruned = 0u64;
        for (bench, profile) in benches.iter().zip(&profiles) {
            for policy in &policies {
                let s = score_cell(profile, geometry, &policy.label(), margin);
                pruned += u64::from(s.pruned);
                cells.push(Json::Obj(vec![
                    ("bench".into(), Json::Str(bench.name().to_string())),
                    ("policy".into(), Json::Str(policy.label())),
                    ("est_miss_rate".into(), Json::Num(s.estimate.miss_rate)),
                    ("band".into(), Json::Num(s.estimate.band)),
                    ("delta".into(), Json::Num(s.delta)),
                    ("pruned".into(), Json::Bool(s.pruned)),
                    ("reason".into(), Json::Str(s.reason)),
                ]));
            }
        }
        let total = cells.len() as u64;
        Json::Obj(vec![
            ("model".into(), Json::Bool(true)),
            (
                "kind".into(),
                Json::Str(match &self.kind {
                    JobKind::Fig5 => "fig5".into(),
                    JobKind::Sweep { .. } => "sweep".into(),
                }),
            ),
            ("accesses".into(), Json::Num(self.accesses as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("prune_margin".into(), Json::Num(margin)),
            ("cells".into(), Json::Arr(cells)),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("cells".into(), Json::Num(total as f64)),
                    ("pruned".into(), Json::Num(pruned as f64)),
                    ("surviving".into(), Json::Num((total - pruned) as f64)),
                ]),
            ),
        ])
    }

    /// Execute the job, streaming telemetry into `telemetry` and honoring
    /// `cancel` at matrix-cell granularity. The returned report is
    /// byte-identical to the corresponding CLI invocation.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before the sweep completed.
    pub fn run(&self, telemetry: SinkHandle, cancel: &CancelToken) -> Result<String, Cancelled> {
        self.run_traced(telemetry, cancel, None)
    }

    /// [`JobSpec::run`] with an optional per-cell span observer: the
    /// serving layer passes one to record every matrix cell as a
    /// `run(cell=i,j)` span on the request's trace. The report bytes are
    /// identical with or without the observer.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before the sweep completed.
    pub fn run_traced(
        &self,
        telemetry: SinkHandle,
        cancel: &CancelToken,
        cell_spans: Option<CellSpanSink>,
    ) -> Result<String, Cancelled> {
        let opts = RunOptions {
            accesses: self.accesses,
            seed: self.seed,
            jobs: self.jobs,
            telemetry,
            cell_spans,
            ..RunOptions::default()
        };
        match &self.kind {
            JobKind::Fig5 => try_fig5_report(&opts, cancel),
            JobKind::Sweep { benches, policies } => {
                try_sweep_report(benches, policies, &opts, cancel)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_fig5_spec_gets_defaults() {
        let s = JobSpec::parse(r#"{"kind":"fig5"}"#).unwrap();
        assert!(matches!(s.kind, JobKind::Fig5));
        assert_eq!(s.accesses, DEFAULT_ACCESSES);
        assert_eq!(s.seed, DEFAULT_SEED);
        assert_eq!(s.jobs, 1);
        assert_eq!(s.deadline_ms, None);
    }

    #[test]
    fn sweep_spec_parses_benches_and_policies() {
        let s = JobSpec::parse(
            r#"{"kind":"sweep","benches":["mcf","art"],
                "policies":["lru","lin(7)","sbar"],"accesses":500,"jobs":3}"#,
        )
        .unwrap();
        match &s.kind {
            JobKind::Sweep { benches, policies } => {
                assert_eq!(benches.len(), 2);
                assert_eq!(policies.len(), 3);
                assert!(matches!(policies[1], PolicyKind::Lin { lambda: 7 }));
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        assert_eq!(s.accesses, 500);
        assert_eq!(s.jobs, 3);
    }

    #[test]
    fn canonical_encoding_round_trips() {
        for raw in [
            r#"{"kind":"fig5","accesses":700,"seed":9,"jobs":2,"deadline_ms":5000}"#,
            r#"{"kind":"sweep","benches":["twolf"],"policies":["lin(4)","cbs-local"]}"#,
        ] {
            let a = JobSpec::parse(raw).unwrap();
            let b = JobSpec::from_json(&a.to_json()).unwrap();
            assert_eq!(
                a.to_json().to_string_compact(),
                b.to_json().to_string_compact(),
                "{raw}"
            );
        }
    }

    #[test]
    fn bad_specs_name_the_field() {
        for (raw, needle) in [
            (r#"{}"#, "kind"),
            (r#"{"kind":"fig6"}"#, "unknown job kind"),
            (r#"{"kind":"fig5","accesses":0}"#, "accesses"),
            (r#"{"kind":"fig5","jobs":"many"}"#, "jobs"),
            (r#"{"kind":"sweep","benches":["gcc"]}"#, "unknown benchmark"),
            (
                r#"{"kind":"sweep","policies":["belady"]}"#,
                "unknown policy",
            ),
            (r#"{"kind":"sweep","benches":[]}"#, "at least one"),
            (r#"not json"#, "JSON error"),
        ] {
            let err = JobSpec::parse(raw).expect_err(raw);
            assert!(err.contains(needle), "{raw}: {err}");
        }
    }

    #[test]
    fn estimate_doc_is_labeled_and_scores_every_cell() {
        let spec = JobSpec::parse(
            r#"{"kind":"sweep","benches":["mcf","art"],"policies":["lru","lin(4)"],
                "accesses":2000,"jobs":2}"#,
        )
        .unwrap();
        let doc = spec.estimate_doc(DEFAULT_PRUNE_MARGIN);
        assert_eq!(doc.get("model").and_then(Json::as_bool), Some(true));
        let cells = match doc.get("cells") {
            Some(Json::Arr(cells)) => cells,
            other => panic!("expected cells array, got {other:?}"),
        };
        assert_eq!(cells.len(), 4);
        for cell in cells {
            let rate = cell.get("est_miss_rate").and_then(Json::as_f64).unwrap();
            assert!((0.0..=1.0).contains(&rate), "{rate}");
            assert!(cell.get("reason").and_then(Json::as_str).is_some());
        }
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("cells").and_then(Json::as_u64), Some(4));
        // Estimation never simulates, so it must round-trip the parser.
        let back = Json::parse(&doc.to_string_compact()).unwrap();
        assert_eq!(back.to_string_compact(), doc.to_string_compact());
    }

    #[test]
    fn prune_margin_field_validates() {
        let default = prune_margin_from_json(&Json::parse(r#"{"kind":"fig5"}"#).unwrap()).unwrap();
        assert!((default - DEFAULT_PRUNE_MARGIN).abs() < 1e-12);
        let explicit =
            prune_margin_from_json(&Json::parse(r#"{"prune_margin":0.02}"#).unwrap()).unwrap();
        assert!((explicit - 0.02).abs() < 1e-12);
        for raw in [
            r#"{"prune_margin":-0.1}"#,
            r#"{"prune_margin":"lots"}"#,
            r#"{"prune_margin":1e999}"#,
        ] {
            let err = prune_margin_from_json(&Json::parse(raw).unwrap()).expect_err(raw);
            assert!(err.contains("prune_margin"), "{raw}: {err}");
        }
    }

    #[test]
    fn spec_run_matches_cli_run_path() {
        let spec = JobSpec::parse(
            r#"{"kind":"sweep","benches":["mcf"],"policies":["lru"],"accesses":800}"#,
        )
        .unwrap();
        let via_spec = spec
            .run(SinkHandle::disabled(), &CancelToken::new())
            .unwrap();
        let direct = crate::figures::sweep_report(
            &[SpecBench::Mcf],
            &[PolicyKind::Lru],
            &RunOptions {
                accesses: 800,
                jobs: 1,
                ..RunOptions::default()
            },
        );
        assert_eq!(via_spec, direct, "one run path, byte-identical");
    }
}
