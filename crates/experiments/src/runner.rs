//! Shared simulation driver for the experiment binaries.
//!
//! # Parallel sweeps
//!
//! The paper's evaluation is a matrix of benchmarks × policies; every cell
//! is an independent deterministic simulation. [`run_matrix`] (and
//! [`run_many`], its one-benchmark special case) fans the cells out over a
//! [`WorkerPool`] sized by [`RunOptions::jobs`] — default
//! [`mlpsim_exec::default_jobs`] (all hardware threads, `MLPSIM_JOBS`
//! override), `--jobs N` on every experiment binary.
//!
//! **Determinism guarantee:** a sweep's observable output — returned
//! [`SimResult`]s, printed tables, and the `--telemetry` NDJSON stream —
//! is byte-for-byte identical at every job count, including `-j1`, and
//! identical to the historical serial loop. Three mechanisms deliver this:
//! each cell simulates a [`Trace`] shared immutably via [`Arc`]; the pool
//! returns results in submission order regardless of completion order; and
//! each cell buffers its telemetry privately ([`VecSink`]) for replay into
//! the shared sink in submission order, so `run_start`/`run_end` brackets
//! never interleave mid-run.

use mlpsim_core::ccl::AdderMode;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_cpu::system::System;
use mlpsim_exec::{CancelToken, Cancelled, SpanHook, WorkerPool};
use mlpsim_telemetry::{
    ChromeTraceSink, Event, EventSink, FanoutSink, NdjsonSink, SinkHandle, SinkProbe, VecSink,
};
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;
use std::sync::{Arc, Mutex};

/// Default number of memory accesses per benchmark run. The paper
/// simulates 250 M instructions; these synthetic slices are sized so the
/// working sets wrap several times and every policy reaches steady state,
/// while keeping a full 14-benchmark sweep in seconds.
pub const DEFAULT_ACCESSES: usize = 420_000;

/// Default RNG seed for workload generation.
pub const DEFAULT_SEED: u64 = 42;

/// Observer for per-cell wall time in a matrix sweep: called as
/// `(row, col, start_ns, end_ns)` — benchmark row, policy column, and two
/// [`mlpsim_telemetry::prof::now_ns`] readings bracketing the cell's
/// simulation — on the worker thread right after each cell finishes. The
/// serving layer uses this to turn every `run(cell=i,j)` into a trace
/// span; the callback must be cheap and must not panic. Purely
/// observational: results and telemetry bytes are identical with or
/// without one.
#[derive(Clone)]
pub struct CellSpanSink(pub Arc<dyn Fn(usize, usize, u64, u64) + Send + Sync>);

impl std::fmt::Debug for CellSpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellSpanSink").finish_non_exhaustive()
    }
}

/// Options for a benchmark run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Number of memory accesses to generate.
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
    /// Time-series sampling interval (retired instructions), if any.
    pub sample_interval: Option<u64>,
    /// CCL adder configuration (paper footnote 3).
    pub adders: AdderMode,
    /// Telemetry sink. Disabled by default; when enabled every run streams
    /// its events into the shared sink (runs from one sweep land in one
    /// file, separated by `run_start`/`run_end` markers, in sweep order
    /// even when the sweep itself runs parallel).
    pub telemetry: SinkHandle,
    /// Worker threads for [`run_many`]/[`run_matrix`] fan-out. The job
    /// count never changes results or output bytes — only wall-clock.
    pub jobs: usize,
    /// Optional per-cell wall-time observer (tracing). `None` by default;
    /// never affects results.
    pub cell_spans: Option<CellSpanSink>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            accesses: DEFAULT_ACCESSES,
            seed: DEFAULT_SEED,
            sample_interval: None,
            adders: AdderMode::PerEntry,
            telemetry: SinkHandle::disabled(),
            jobs: mlpsim_exec::default_jobs(),
            cell_spans: None,
        }
    }
}

impl RunOptions {
    /// Default options with `--telemetry`, `--trace-out`, `--accesses`,
    /// and `--jobs` parsed from the process's command line; exits with a
    /// message on a malformed flag.
    pub fn from_env() -> Self {
        RunOptions {
            telemetry: sinks_from_env(),
            accesses: accesses_from_env(),
            jobs: jobs_from_env(),
            ..RunOptions::default()
        }
    }
}

/// Scans `args` for `<flag> <path>` (or `<flag>=<path>`). The two-token
/// form refuses flag-like paths (`--telemetry --accesses` must not
/// silently eat `--accesses`; spell a genuinely dash-prefixed filename
/// with the `=` form), and the `=` form refuses an empty path.
fn path_flag(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let mut path: Option<String> = None;
    let eq_form = format!("{flag}=");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next() {
                Some(p) if p.starts_with("--") => {
                    return Err(format!(
                        "{flag} requires a path argument, got the flag-like {p:?} \
                         (use {flag}={p} for a path that really starts with \"--\")"
                    ));
                }
                Some(p) => path = Some(p.clone()),
                None => return Err(format!("{flag} requires a path argument")),
            }
        } else if let Some(p) = a.strip_prefix(&eq_form) {
            if p.is_empty() {
                return Err(format!("{eq_form} requires a non-empty path"));
            }
            path = Some(p.to_string());
        }
    }
    Ok(path)
}

/// Builds [`RunOptions::telemetry`] from a command line: scans `args` for
/// `--telemetry <path>` (or `--telemetry=<path>`) and opens an NDJSON sink
/// there. Returns a disabled handle when the flag is absent and an error
/// when the path is missing, looks like another flag (`--telemetry
/// --accesses` must not silently eat `--accesses`; spell a genuinely
/// dash-prefixed filename as `--telemetry=--weird-name`), or cannot be
/// created (an experiment run whose requested telemetry silently vanishes
/// is worse than no run).
pub fn telemetry_from_args(args: &[String]) -> Result<SinkHandle, String> {
    match path_flag(args, "--telemetry")? {
        None => Ok(SinkHandle::disabled()),
        Some(p) => match NdjsonSink::create(&p) {
            Ok(sink) => Ok(SinkHandle::of(sink)),
            Err(e) => Err(format!("cannot create telemetry file {p}: {e}")),
        },
    }
}

/// [`telemetry_from_args`] over the process's own command line; exits with
/// the parse error on a malformed flag.
pub fn telemetry_from_env() -> SinkHandle {
    telemetry_from_args(&env_args()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Builds the full event sink from a command line: `--telemetry <path>`
/// opens an NDJSON stream, `--trace-out <path>` a Chrome trace-event JSON
/// file (load it in `chrome://tracing` or Perfetto). Either alone, both
/// fanned out from one stream ([`FanoutSink`]), or a disabled handle when
/// neither flag is present.
pub fn sinks_from_args(args: &[String]) -> Result<SinkHandle, String> {
    let ndjson = path_flag(args, "--telemetry")?;
    let trace = path_flag(args, "--trace-out")?;
    let open_ndjson = |p: &str| {
        NdjsonSink::create(p).map_err(|e| format!("cannot create telemetry file {p}: {e}"))
    };
    let open_trace = |p: &str| {
        ChromeTraceSink::create(p).map_err(|e| format!("cannot create trace file {p}: {e}"))
    };
    Ok(match (ndjson, trace) {
        (None, None) => SinkHandle::disabled(),
        (Some(np), None) => SinkHandle::of(open_ndjson(&np)?),
        (None, Some(tp)) => SinkHandle::of(open_trace(&tp)?),
        (Some(np), Some(tp)) => SinkHandle::of(
            FanoutSink::new()
                .with(open_ndjson(&np)?)
                .with(open_trace(&tp)?),
        ),
    })
}

/// [`sinks_from_args`] over the process's own command line; exits with the
/// parse error on a malformed flag.
pub fn sinks_from_env() -> SinkHandle {
    sinks_from_args(&env_args()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Scans `args` for `--accesses <N>` (or `--accesses=<N>`): the per-run
/// access count, defaulting to [`DEFAULT_ACCESSES`]. Zero is rejected —
/// an empty run renders every table meaningless.
pub fn accesses_from_args(args: &[String]) -> Result<usize, String> {
    let mut accesses: Option<usize> = None;
    let parse = |raw: &str| -> Result<usize, String> {
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--accesses wants a positive integer, got {raw:?}")),
        }
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--accesses" {
            match it.next() {
                Some(n) => accesses = Some(parse(n)?),
                None => return Err("--accesses requires a count argument".into()),
            }
        } else if let Some(n) = a.strip_prefix("--accesses=") {
            accesses = Some(parse(n)?);
        }
    }
    Ok(accesses.unwrap_or(DEFAULT_ACCESSES))
}

/// [`accesses_from_args`] over the process's own command line; exits with
/// the parse error on a malformed flag.
pub fn accesses_from_env() -> usize {
    accesses_from_args(&env_args()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Builds [`RunOptions::jobs`] from a command line: scans `args` for
/// `--jobs <N>`, `--jobs=<N>`, `-j <N>`, or `-j<N>`. Absent the flag,
/// falls back to [`mlpsim_exec::default_jobs`] (the `MLPSIM_JOBS`
/// environment variable, then the hardware thread count).
pub fn jobs_from_args(args: &[String]) -> Result<usize, String> {
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    let parse = |raw: &str| -> Result<usize, String> {
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--jobs wants a positive integer, got {raw:?}")),
        }
    };
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            match it.next() {
                Some(n) => jobs = Some(parse(n)?),
                None => return Err(format!("{a} requires a worker-count argument")),
            }
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            jobs = Some(parse(n)?);
        } else if let Some(n) = a.strip_prefix("-j") {
            if !n.is_empty() {
                jobs = Some(parse(n)?);
            }
        }
    }
    Ok(jobs.unwrap_or_else(mlpsim_exec::default_jobs))
}

/// [`jobs_from_args`] over the process's own command line; exits with the
/// parse error on a malformed flag.
pub fn jobs_from_env() -> usize {
    jobs_from_args(&env_args()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Sweep-planner options (`--plan estimate`); `None` means a full sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlanOptions {
    /// Prune a cell when its predicted miss-rate delta vs the incumbent
    /// is strictly below this margin (`--prune-margin`; 0 keeps every
    /// cell).
    pub margin: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            margin: mlpsim_model::plan::DEFAULT_PRUNE_MARGIN,
        }
    }
}

/// Scans `args` for `--plan <mode>` (or `--plan=<mode>`) and
/// `--prune-margin <F>` (or `--prune-margin=<F>`). Mode `estimate`
/// enables the analytical planner; `full` (the default) runs the whole
/// sweep. The margin must be a finite non-negative number and only makes
/// sense with `--plan estimate` — a margin without a plan is rejected
/// rather than silently ignored.
pub fn plan_from_args(args: &[String]) -> Result<Option<PlanOptions>, String> {
    let mut mode: Option<String> = None;
    let mut margin: Option<f64> = None;
    let parse_mode = |raw: &str| -> Result<String, String> {
        match raw {
            "estimate" | "full" => Ok(raw.to_string()),
            _ => Err(format!(
                "--plan wants \"estimate\" or \"full\", got {raw:?}"
            )),
        }
    };
    let parse_margin = |raw: &str| -> Result<f64, String> {
        match raw.parse::<f64>() {
            Ok(m) if m.is_finite() && m >= 0.0 => Ok(m),
            _ => Err(format!(
                "--prune-margin wants a finite non-negative number, got {raw:?}"
            )),
        }
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--plan" {
            match it.next() {
                Some(m) => mode = Some(parse_mode(m)?),
                None => return Err("--plan requires a mode argument".into()),
            }
        } else if let Some(m) = a.strip_prefix("--plan=") {
            mode = Some(parse_mode(m)?);
        } else if a == "--prune-margin" {
            match it.next() {
                Some(m) => margin = Some(parse_margin(m)?),
                None => return Err("--prune-margin requires a number argument".into()),
            }
        } else if let Some(m) = a.strip_prefix("--prune-margin=") {
            margin = Some(parse_margin(m)?);
        }
    }
    match (mode.as_deref(), margin) {
        (Some("estimate"), m) => Ok(Some(PlanOptions {
            margin: m.unwrap_or(mlpsim_model::plan::DEFAULT_PRUNE_MARGIN),
        })),
        (_, Some(_)) => Err("--prune-margin requires --plan estimate".into()),
        _ => Ok(None),
    }
}

/// [`plan_from_args`] over the process's own command line; exits with the
/// parse error on a malformed flag.
pub fn plan_from_env() -> Option<PlanOptions> {
    plan_from_args(&env_args()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn env_args() -> Vec<String> {
    std::env::args().skip(1).collect()
}

/// Runs `bench` under `policy` on the baseline machine with default
/// options.
pub fn run_bench(bench: SpecBench, policy: PolicyKind) -> SimResult {
    run_bench_with(bench, policy, &RunOptions::default())
}

/// Runs `bench` under `policy` with explicit options.
pub fn run_bench_with(bench: SpecBench, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let trace = bench.generate(opts.accesses, opts.seed);
    run_trace(&trace, policy, opts)
}

/// Generates the benchmark's trace once and runs it under each policy —
/// the one-benchmark row of [`run_matrix`], sharing its parallelism and
/// determinism guarantees.
pub fn run_many(bench: SpecBench, policies: &[PolicyKind], opts: &RunOptions) -> Vec<SimResult> {
    run_matrix(&[bench], policies, opts)
        .pop()
        .expect("one row per benchmark")
}

/// Runs the full `benches` × `policies` sweep on [`RunOptions::jobs`]
/// workers and returns one row of results per benchmark, cells in policy
/// order — exactly what the historical serial double loop returned, at a
/// fraction of the wall-clock.
///
/// Each benchmark's trace is generated once (itself fanned out across the
/// pool) and shared by its row's cells via [`Arc`]; results come back in
/// submission order; buffered per-run telemetry is replayed into
/// [`RunOptions::telemetry`] in the same bench-major, policy-minor order a
/// serial sweep would have streamed it.
pub fn run_matrix(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
) -> Vec<Vec<SimResult>> {
    match try_run_matrix(benches, policies, opts, &CancelToken::new()) {
        Ok(rows) => rows,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

/// [`run_matrix`] with cooperative cancellation for the serving layer:
/// `cancel` is consulted before each trace generation and each matrix
/// cell (the [`WorkerPool::try_map_ordered`] contract), so a cancelled
/// sweep stops within one cell's simulation time. Until the token fires
/// the output — results *and* replayed telemetry — is byte-identical to
/// [`run_matrix`]; once it fires, partial results are discarded and no
/// buffered telemetry is replayed (the stream never carries a half
/// sweep).
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the sweep completed.
pub fn try_run_matrix(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
    cancel: &CancelToken,
) -> Result<Vec<Vec<SimResult>>, Cancelled> {
    let pool = WorkerPool::new(opts.jobs);
    let (accesses, seed) = (opts.accesses, opts.seed);
    let traces: Vec<Arc<Trace>> = pool.try_map_ordered(
        benches
            .iter()
            .map(|&b| move || Arc::new(b.generate(accesses, seed)))
            .collect(),
        cancel,
    )?;

    let cell = CellOptions::of(opts);
    let mut jobs = Vec::with_capacity(benches.len() * policies.len());
    for trace in &traces {
        for &policy in policies {
            let trace = Arc::clone(trace);
            jobs.push(move || cell.run(&trace, policy));
        }
    }
    // Cells are submitted bench-major, policy-minor, so a flat submission
    // index decomposes back into (row, col) for the span observer.
    let hook = opts.cell_spans.as_ref().map(|sink| {
        let cb = Arc::clone(&sink.0);
        let ncols = policies.len().max(1);
        SpanHook {
            clock: mlpsim_telemetry::prof::now_ns,
            record: Arc::new(move |idx, t0, t1| cb(idx / ncols, idx % ncols, t0, t1)),
        }
    });
    let cells = pool.try_map_ordered_spanned(jobs, cancel, hook.as_ref())?;

    let mut rows = Vec::with_capacity(benches.len());
    let mut it = cells.into_iter();
    for _ in 0..traces.len() {
        let mut row = Vec::with_capacity(policies.len());
        for _ in 0..policies.len() {
            let (result, events) = it.next().expect("one cell per (bench, policy)");
            // Replay this run's buffered events into the shared sink;
            // submission order here *is* serial sweep order, so the NDJSON
            // stream is bit-identical to a `-j1` (or pre-pool) run.
            for ev in events {
                opts.telemetry.emit(ev);
            }
            row.push(result);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Runs a ragged list of cells — `(trace index, policy)` pairs over
/// pre-generated shared traces — on [`RunOptions::jobs`] workers. This is
/// the sweep planner's survivor path: unlike [`try_run_matrix`] the cell
/// list need not be a full cross product, but each cell goes through the
/// *same* per-cell simulation and telemetry buffering, with buffered
/// events replayed into [`RunOptions::telemetry`] in submission order —
/// so a surviving cell's results and event bytes are identical to the
/// ones the full matrix would have produced.
///
/// # Panics
///
/// Panics if a cell's trace index is out of range for `traces`.
///
/// # Errors
///
/// [`Cancelled`] when the token fired before every cell completed.
pub fn try_run_cells(
    traces: &[Arc<Trace>],
    cells: &[(usize, PolicyKind)],
    opts: &RunOptions,
    cancel: &CancelToken,
) -> Result<Vec<SimResult>, Cancelled> {
    let pool = WorkerPool::new(opts.jobs);
    let cell = CellOptions::of(opts);
    let jobs: Vec<_> = cells
        .iter()
        .map(|&(ti, policy)| {
            assert!(ti < traces.len(), "cell trace index {ti} out of range");
            let trace = Arc::clone(&traces[ti]);
            move || cell.run(&trace, policy)
        })
        .collect();
    let results = pool.try_map_ordered(jobs, cancel)?;
    Ok(results
        .into_iter()
        .map(|(result, events)| {
            for ev in events {
                opts.telemetry.emit(ev);
            }
            result
        })
        .collect())
}

/// The `Send + Copy` slice of [`RunOptions`] a worker needs to simulate
/// one matrix cell.
#[derive(Clone, Copy)]
struct CellOptions {
    sample_interval: Option<u64>,
    adders: AdderMode,
    telemetry: bool,
}

impl CellOptions {
    fn of(opts: &RunOptions) -> Self {
        CellOptions {
            sample_interval: opts.sample_interval,
            adders: opts.adders,
            telemetry: opts.telemetry.enabled(),
        }
    }

    fn config(self, policy: PolicyKind) -> SystemConfig {
        let mut cfg = SystemConfig::baseline(policy);
        cfg.sample_interval = self.sample_interval;
        cfg.adders = self.adders;
        cfg
    }

    /// Simulates one cell, buffering its telemetry (if any) for in-order
    /// replay by the submitting thread.
    fn run(self, trace: &Trace, policy: PolicyKind) -> (SimResult, Vec<Event>) {
        if self.telemetry {
            let buf = Arc::new(Mutex::new(VecSink::new()));
            let handle = SinkHandle::shared(Arc::clone(&buf) as Arc<Mutex<dyn EventSink + Send>>);
            let result =
                System::with_probe(self.config(policy), SinkProbe::new(handle)).run(trace.iter());
            let events = std::mem::take(&mut buf.lock().expect("buffer sink lock").events);
            (result, events)
        } else {
            (
                System::new(self.config(policy)).run(trace.iter()),
                Vec::new(),
            )
        }
    }
}

/// Runs a pre-generated trace under `policy` on the baseline machine.
/// Telemetry (when enabled) streams directly into the shared sink — this
/// is the single-run path; sweeps go through [`run_matrix`]'s buffering.
pub fn run_trace(trace: &Trace, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let cell = CellOptions::of(opts);
    if opts.telemetry.enabled() {
        System::with_probe(cell.config(policy), SinkProbe::new(opts.telemetry.clone()))
            .run(trace.iter())
    } else {
        System::new(cell.config(policy)).run(trace.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_flag_parsing() {
        let none = telemetry_from_args(&["--accesses".into(), "5".into()]).unwrap();
        assert!(!none.enabled());
        let dir = std::env::temp_dir().join("mlpsim-telemetry-flag-test.ndjson");
        let eq_form = telemetry_from_args(&[format!("--telemetry={}", dir.display())]).unwrap();
        assert!(eq_form.enabled());
        let two_form =
            telemetry_from_args(&["--telemetry".into(), dir.display().to_string()]).unwrap();
        assert!(two_form.enabled());
        drop((eq_form, two_form));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn telemetry_flag_rejects_flag_like_paths() {
        let err = telemetry_from_args(&["--telemetry".into(), "--accesses".into()])
            .expect_err("a flag must not be eaten as a path");
        assert!(err.contains("--accesses"), "{err}");
        assert!(telemetry_from_args(&["--telemetry".into()]).is_err());
        assert!(telemetry_from_args(&["--telemetry=".into()]).is_err());
        // The `=` form is the documented escape hatch and keeps working
        // (the open may still fail; an Err must mention the odd name).
        let dir = std::env::temp_dir().join("--mlpsim-dashed-name.ndjson");
        let weird = telemetry_from_args(&[format!("--telemetry={}", dir.display())]).unwrap();
        assert!(weird.enabled());
        drop(weird);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn trace_out_and_combined_sinks() {
        let none = sinks_from_args(&[]).unwrap();
        assert!(!none.enabled());
        let tdir = std::env::temp_dir();
        let tpath = tdir.join("mlpsim-trace-out-flag-test.json");
        let only_trace = sinks_from_args(&[format!("--trace-out={}", tpath.display())]).unwrap();
        assert!(only_trace.enabled());
        drop(only_trace);
        let npath = tdir.join("mlpsim-combined-flag-test.ndjson");
        let both = sinks_from_args(&[
            "--telemetry".into(),
            npath.display().to_string(),
            "--trace-out".into(),
            tpath.display().to_string(),
        ])
        .unwrap();
        assert!(both.enabled());
        drop(both);
        // The same flag-eating rules as --telemetry apply.
        assert!(sinks_from_args(&["--trace-out".into(), "--jobs".into()]).is_err());
        assert!(sinks_from_args(&["--trace-out=".into()]).is_err());
        let _ = std::fs::remove_file(tpath);
        let _ = std::fs::remove_file(npath);
    }

    #[test]
    fn trace_out_run_writes_a_parseable_chrome_trace() {
        let path = std::env::temp_dir().join("mlpsim-runner-trace-test.json");
        let opts = RunOptions {
            accesses: 2_000,
            telemetry: SinkHandle::of(ChromeTraceSink::create(&path).unwrap()),
            ..RunOptions::default()
        };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::Lru, &opts);
        drop(opts); // last handle: the trace document is written on drop
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let doc = mlpsim_telemetry::Json::parse(&text).expect("valid JSON document");
        let events = match doc.get("traceEvents") {
            Some(mlpsim_telemetry::Json::Arr(items)) => items.len(),
            other => panic!("traceEvents array missing: {other:?}"),
        };
        assert!(events > 0, "a stall-heavy run produces trace slices");
        assert!(r.mem_stall_cycles > 0);
    }

    #[test]
    fn accesses_flag_parsing() {
        let parse = |args: &[&str]| {
            accesses_from_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert_eq!(parse(&[]).unwrap(), DEFAULT_ACCESSES);
        assert_eq!(parse(&["--accesses", "4000"]).unwrap(), 4000);
        assert_eq!(parse(&["--accesses=9"]).unwrap(), 9);
        assert!(parse(&["--accesses", "0"]).is_err());
        assert!(parse(&["--accesses"]).is_err());
        assert!(parse(&["--accesses", "many"]).is_err());
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse =
            |args: &[&str]| jobs_from_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(parse(&["--jobs", "3"]).unwrap(), 3);
        assert_eq!(parse(&["--jobs=8"]).unwrap(), 8);
        assert_eq!(parse(&["-j", "2"]).unwrap(), 2);
        assert_eq!(parse(&["-j4"]).unwrap(), 4);
        assert_eq!(parse(&["-j1", "--jobs", "6"]).unwrap(), 6, "last flag wins");
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["-jx"]).is_err());
        assert!(parse(&[]).unwrap() >= 1);
    }

    #[test]
    fn plan_flag_parsing() {
        let parse =
            |args: &[&str]| plan_from_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        assert_eq!(parse(&[]).unwrap(), None);
        assert_eq!(parse(&["--plan", "full"]).unwrap(), None);
        let defaulted = parse(&["--plan", "estimate"]).unwrap().unwrap();
        assert_eq!(defaulted.margin, mlpsim_model::plan::DEFAULT_PRUNE_MARGIN);
        let explicit = parse(&["--plan=estimate", "--prune-margin", "0.02"])
            .unwrap()
            .unwrap();
        assert_eq!(explicit.margin, 0.02);
        assert_eq!(
            parse(&["--plan", "estimate", "--prune-margin=0"])
                .unwrap()
                .unwrap()
                .margin,
            0.0
        );
        // Garbage values exit through Err (the *_from_env twin exits 2).
        assert!(parse(&["--plan", "maybe"]).is_err());
        assert!(parse(&["--plan"]).is_err());
        assert!(parse(&["--plan", "estimate", "--prune-margin", "lots"]).is_err());
        assert!(parse(&["--plan", "estimate", "--prune-margin", "-0.1"]).is_err());
        assert!(parse(&["--plan", "estimate", "--prune-margin", "NaN"]).is_err());
        assert!(parse(&["--plan", "estimate", "--prune-margin"]).is_err());
        // A margin without the planner is a contradiction, not a no-op.
        assert!(parse(&["--prune-margin", "0.01"]).is_err());
        assert!(parse(&["--plan", "full", "--prune-margin", "0.01"]).is_err());
    }

    #[test]
    fn run_cells_matches_matrix_cells() {
        let opts = RunOptions {
            accesses: 2_000,
            jobs: 2,
            ..RunOptions::default()
        };
        let benches = [SpecBench::Mcf, SpecBench::Art];
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        let matrix = run_matrix(&benches, &policies, &opts);
        let traces: Vec<Arc<Trace>> = benches
            .iter()
            .map(|b| Arc::new(b.generate(opts.accesses, opts.seed)))
            .collect();
        // A ragged subset: (mcf, lin4) and (art, lru).
        let cells = [(0usize, PolicyKind::lin4()), (1usize, PolicyKind::Lru)];
        let results = try_run_cells(&traces, &cells, &opts, &CancelToken::new()).unwrap();
        assert_eq!(results[0], matrix[0][1]);
        assert_eq!(results[1], matrix[1][0]);
    }

    #[test]
    fn telemetry_run_streams_parseable_events() {
        let path = std::env::temp_dir().join("mlpsim-runner-telemetry-test.ndjson");
        let opts = RunOptions {
            accesses: 2_000,
            telemetry: SinkHandle::of(mlpsim_telemetry::NdjsonSink::create(&path).unwrap()),
            ..RunOptions::default()
        };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::sbar_default(), &opts);
        drop(opts); // last handle: final snapshot + flush
        let events = mlpsim_telemetry::read_ndjson(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(events.iter().any(|e| e.kind() == "run_start"));
        assert!(events.iter().any(|e| e.kind() == "run_end"));
        let serviced = events.iter().filter(|e| e.kind() == "serviced").count() as u64;
        // Every serviced event is a demand miss; merged re-misses count in
        // l2.misses but service as one fill, so serviced <= misses.
        assert!(
            serviced > 0 && serviced <= r.l2.misses,
            "{serviced} vs {}",
            r.l2.misses
        );
        let misses = events.iter().filter(|e| e.kind() == "cache_miss").count() as u64;
        assert_eq!(misses, r.l2.misses);
    }

    #[test]
    fn runner_produces_sane_results() {
        let opts = RunOptions {
            accesses: 3_000,
            ..RunOptions::default()
        };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::Lru, &opts);
        assert!(r.instructions > 3_000);
        assert!(r.cycles > 0);
        assert!(r.l2.misses > 0);
        assert!(r.ipc() > 0.0 && r.ipc() < 8.0);
    }

    #[test]
    fn matrix_rows_match_individual_runs() {
        let opts = RunOptions {
            accesses: 2_500,
            jobs: 3,
            ..RunOptions::default()
        };
        let benches = [SpecBench::Mcf, SpecBench::Art];
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        let matrix = run_matrix(&benches, &policies, &opts);
        assert_eq!(matrix.len(), 2);
        for (bi, bench) in benches.iter().enumerate() {
            assert_eq!(matrix[bi].len(), 2);
            for (pi, &policy) in policies.iter().enumerate() {
                let lone = run_bench_with(*bench, policy, &opts);
                assert_eq!(matrix[bi][pi], lone, "{bench:?}/{policy:?} diverged");
            }
        }
    }
}
