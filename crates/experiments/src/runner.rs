//! Shared simulation driver for the experiment binaries.

use mlpsim_core::ccl::AdderMode;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_cpu::system::System;
use mlpsim_telemetry::{NdjsonSink, SinkHandle, SinkProbe};
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;

/// Default number of memory accesses per benchmark run. The paper
/// simulates 250 M instructions; these synthetic slices are sized so the
/// working sets wrap several times and every policy reaches steady state,
/// while keeping a full 14-benchmark sweep in seconds.
pub const DEFAULT_ACCESSES: usize = 420_000;

/// Default RNG seed for workload generation.
pub const DEFAULT_SEED: u64 = 42;

/// Options for a benchmark run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Number of memory accesses to generate.
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
    /// Time-series sampling interval (retired instructions), if any.
    pub sample_interval: Option<u64>,
    /// CCL adder configuration (paper footnote 3).
    pub adders: AdderMode,
    /// Telemetry sink. Disabled by default; when enabled every run streams
    /// its events into the shared sink (runs from one sweep interleave in
    /// one file, separated by `run_start`/`run_end` markers).
    pub telemetry: SinkHandle,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            accesses: DEFAULT_ACCESSES,
            seed: DEFAULT_SEED,
            sample_interval: None,
            adders: AdderMode::PerEntry,
            telemetry: SinkHandle::disabled(),
        }
    }
}

/// Builds [`RunOptions::telemetry`] from a command line: scans `args` for
/// `--telemetry <path>` (or `--telemetry=<path>`) and opens an NDJSON sink
/// there. Returns a disabled handle when the flag is absent; exits with a
/// message when the file cannot be created (an experiment run whose
/// requested telemetry silently vanishes is worse than no run).
pub fn telemetry_from_args(args: &[String]) -> SinkHandle {
    let mut path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--telemetry" {
            match it.next() {
                Some(p) => path = Some(p),
                None => {
                    eprintln!("--telemetry requires a path argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = a.strip_prefix("--telemetry=") {
            path = Some(p);
        }
    }
    match path {
        None => SinkHandle::disabled(),
        Some(p) => match NdjsonSink::create(p) {
            Ok(sink) => SinkHandle::of(sink),
            Err(e) => {
                eprintln!("cannot create telemetry file {p}: {e}");
                std::process::exit(2);
            }
        },
    }
}

/// [`telemetry_from_args`] over the process's own command line.
pub fn telemetry_from_env() -> SinkHandle {
    let args: Vec<String> = std::env::args().skip(1).collect();
    telemetry_from_args(&args)
}

/// Runs `bench` under `policy` on the baseline machine with default
/// options.
pub fn run_bench(bench: SpecBench, policy: PolicyKind) -> SimResult {
    run_bench_with(bench, policy, &RunOptions::default())
}

/// Runs `bench` under `policy` with explicit options.
pub fn run_bench_with(bench: SpecBench, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let trace = bench.generate(opts.accesses, opts.seed);
    run_trace(&trace, policy, opts)
}

/// Generates the benchmark's trace once and runs it under each policy in
/// turn — the efficient shape for policy sweeps (the trace is
/// deterministic, so regenerating it per policy is pure waste).
pub fn run_many(bench: SpecBench, policies: &[PolicyKind], opts: &RunOptions) -> Vec<SimResult> {
    let trace = bench.generate(opts.accesses, opts.seed);
    policies
        .iter()
        .map(|&p| run_trace(&trace, p, opts))
        .collect()
}

/// Runs a pre-generated trace under `policy` on the baseline machine.
pub fn run_trace(trace: &Trace, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let mut cfg = SystemConfig::baseline(policy);
    cfg.sample_interval = opts.sample_interval;
    cfg.adders = opts.adders;
    if opts.telemetry.enabled() {
        System::with_probe(cfg, SinkProbe::new(opts.telemetry.clone())).run(trace.iter())
    } else {
        System::new(cfg).run(trace.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_flag_parsing() {
        let none = telemetry_from_args(&["--accesses".into(), "5".into()]);
        assert!(!none.enabled());
        let dir = std::env::temp_dir().join("mlpsim-telemetry-flag-test.ndjson");
        let eq_form = telemetry_from_args(&[format!("--telemetry={}", dir.display())]);
        assert!(eq_form.enabled());
        let two_form = telemetry_from_args(&["--telemetry".into(), dir.display().to_string()]);
        assert!(two_form.enabled());
        drop((eq_form, two_form));
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn telemetry_run_streams_parseable_events() {
        let path = std::env::temp_dir().join("mlpsim-runner-telemetry-test.ndjson");
        let opts = RunOptions {
            accesses: 2_000,
            telemetry: SinkHandle::of(mlpsim_telemetry::NdjsonSink::create(&path).unwrap()),
            ..RunOptions::default()
        };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::sbar_default(), &opts);
        drop(opts); // last handle: final snapshot + flush
        let events = mlpsim_telemetry::read_ndjson(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(events.iter().any(|e| e.kind() == "run_start"));
        assert!(events.iter().any(|e| e.kind() == "run_end"));
        let serviced = events.iter().filter(|e| e.kind() == "serviced").count() as u64;
        // Every serviced event is a demand miss; merged re-misses count in
        // l2.misses but service as one fill, so serviced <= misses.
        assert!(
            serviced > 0 && serviced <= r.l2.misses,
            "{serviced} vs {}",
            r.l2.misses
        );
        let misses = events.iter().filter(|e| e.kind() == "cache_miss").count() as u64;
        assert_eq!(misses, r.l2.misses);
    }

    #[test]
    fn runner_produces_sane_results() {
        let opts = RunOptions {
            accesses: 3_000,
            ..RunOptions::default()
        };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::Lru, &opts);
        assert!(r.instructions > 3_000);
        assert!(r.cycles > 0);
        assert!(r.l2.misses > 0);
        assert!(r.ipc() > 0.0 && r.ipc() < 8.0);
    }
}
