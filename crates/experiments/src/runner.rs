//! Shared simulation driver for the experiment binaries.

use mlpsim_core::ccl::AdderMode;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_cpu::system::System;
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;

/// Default number of memory accesses per benchmark run. The paper
/// simulates 250 M instructions; these synthetic slices are sized so the
/// working sets wrap several times and every policy reaches steady state,
/// while keeping a full 14-benchmark sweep in seconds.
pub const DEFAULT_ACCESSES: usize = 420_000;

/// Default RNG seed for workload generation.
pub const DEFAULT_SEED: u64 = 42;

/// Options for a benchmark run.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Number of memory accesses to generate.
    pub accesses: usize,
    /// Workload seed.
    pub seed: u64,
    /// Time-series sampling interval (retired instructions), if any.
    pub sample_interval: Option<u64>,
    /// CCL adder configuration (paper footnote 3).
    pub adders: AdderMode,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            accesses: DEFAULT_ACCESSES,
            seed: DEFAULT_SEED,
            sample_interval: None,
            adders: AdderMode::PerEntry,
        }
    }
}

/// Runs `bench` under `policy` on the baseline machine with default
/// options.
pub fn run_bench(bench: SpecBench, policy: PolicyKind) -> SimResult {
    run_bench_with(bench, policy, &RunOptions::default())
}

/// Runs `bench` under `policy` with explicit options.
pub fn run_bench_with(bench: SpecBench, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let trace = bench.generate(opts.accesses, opts.seed);
    run_trace(&trace, policy, opts)
}

/// Generates the benchmark's trace once and runs it under each policy in
/// turn — the efficient shape for policy sweeps (the trace is
/// deterministic, so regenerating it per policy is pure waste).
pub fn run_many(bench: SpecBench, policies: &[PolicyKind], opts: &RunOptions) -> Vec<SimResult> {
    let trace = bench.generate(opts.accesses, opts.seed);
    policies.iter().map(|&p| run_trace(&trace, p, opts)).collect()
}

/// Runs a pre-generated trace under `policy` on the baseline machine.
pub fn run_trace(trace: &Trace, policy: PolicyKind, opts: &RunOptions) -> SimResult {
    let mut cfg = SystemConfig::baseline(policy);
    cfg.sample_interval = opts.sample_interval;
    cfg.adders = opts.adders;
    System::new(cfg).run(trace.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_produces_sane_results() {
        let opts = RunOptions { accesses: 3_000, ..RunOptions::default() };
        let r = run_bench_with(SpecBench::Mcf, PolicyKind::Lru, &opts);
        assert!(r.instructions > 3_000);
        assert!(r.cycles > 0);
        assert!(r.l2.misses > 0);
        assert!(r.ipc() > 0.0 && r.ipc() < 8.0);
    }
}
