//! Reference numbers transcribed from the paper, used to print
//! paper-vs-measured comparisons in the experiment binaries and to anchor
//! `EXPERIMENTS.md`.

use mlpsim_trace::spec::SpecBench;

/// Per-benchmark reference values from the paper.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Benchmark.
    pub bench: SpecBench,
    /// Fig. 4 / Fig. 5 inset: IPC improvement (%) of LIN(λ=4) over LRU.
    pub lin_ipc_pct: f64,
    /// Fig. 5 inset: miss-count change (%) under LIN(λ=4).
    pub lin_miss_pct: f64,
    /// Fig. 9: IPC improvement (%) of SBAR over LRU (read from the bars;
    /// approximate where the paper gives no exact number).
    pub sbar_ipc_pct: f64,
    /// Table 1: % of deltas below 60 cycles.
    pub delta_lt60_pct: f64,
    /// Table 1: average delta in cycles.
    pub delta_avg: f64,
    /// Table 3: L2 misses (thousands) in the paper's 250 M-instruction
    /// slice.
    pub table3_misses_k: u64,
    /// Table 3: % compulsory misses.
    pub compulsory_pct: f64,
}

/// The paper's per-benchmark numbers.
///
/// `lin_ipc_pct`/`lin_miss_pct` come from the Fig. 5 insets; `sbar_ipc_pct`
/// from the Fig. 9 text and bars (ammp 18.3% and art ≈ 16% are quoted in
/// §6.6/§7.1; benchmarks where SBAR "maintains the performance improvement
/// provided by LIN" reuse the LIN number; the LIN-hostile trio is ≈ 0 with
/// a marginal loss). Table 1 and Table 3 values are verbatim.
pub const PAPER_ROWS: [PaperRow; 14] = [
    PaperRow {
        bench: SpecBench::Art,
        lin_ipc_pct: 19.0,
        lin_miss_pct: -31.0,
        sbar_ipc_pct: 16.0,
        delta_lt60_pct: 86.0,
        delta_avg: 27.0,
        table3_misses_k: 968,
        compulsory_pct: 0.5,
    },
    PaperRow {
        bench: SpecBench::Mcf,
        lin_ipc_pct: 22.0,
        lin_miss_pct: -11.0,
        sbar_ipc_pct: 22.0,
        delta_lt60_pct: 86.0,
        delta_avg: 36.0,
        table3_misses_k: 23_123,
        compulsory_pct: 2.2,
    },
    PaperRow {
        bench: SpecBench::Twolf,
        lin_ipc_pct: 1.5,
        lin_miss_pct: 7.0,
        sbar_ipc_pct: 1.5,
        delta_lt60_pct: 52.0,
        delta_avg: 99.0,
        table3_misses_k: 859,
        compulsory_pct: 2.9,
    },
    PaperRow {
        bench: SpecBench::Vpr,
        lin_ipc_pct: 15.0,
        lin_miss_pct: -9.0,
        sbar_ipc_pct: 15.0,
        delta_lt60_pct: 50.0,
        delta_avg: 96.0,
        table3_misses_k: 541,
        compulsory_pct: 4.3,
    },
    PaperRow {
        bench: SpecBench::Facerec,
        lin_ipc_pct: 4.4,
        lin_miss_pct: -3.0,
        sbar_ipc_pct: 4.4,
        delta_lt60_pct: 96.0,
        delta_avg: 18.0,
        table3_misses_k: 1_190,
        compulsory_pct: 18.0,
    },
    PaperRow {
        bench: SpecBench::Ammp,
        lin_ipc_pct: 4.2,
        lin_miss_pct: 4.0,
        sbar_ipc_pct: 18.3,
        delta_lt60_pct: 82.0,
        delta_avg: 43.0,
        table3_misses_k: 740,
        compulsory_pct: 5.1,
    },
    PaperRow {
        bench: SpecBench::Galgel,
        lin_ipc_pct: 5.1,
        lin_miss_pct: -6.0,
        sbar_ipc_pct: 7.0,
        delta_lt60_pct: 71.0,
        delta_avg: 63.0,
        table3_misses_k: 1_333,
        compulsory_pct: 5.9,
    },
    PaperRow {
        bench: SpecBench::Equake,
        lin_ipc_pct: 0.2,
        lin_miss_pct: 1.0,
        sbar_ipc_pct: 0.2,
        delta_lt60_pct: 78.0,
        delta_avg: 53.0,
        table3_misses_k: 464,
        compulsory_pct: 14.2,
    },
    PaperRow {
        bench: SpecBench::Bzip2,
        lin_ipc_pct: -3.3,
        lin_miss_pct: 6.0,
        sbar_ipc_pct: -0.5,
        delta_lt60_pct: 43.0,
        delta_avg: 126.0,
        table3_misses_k: 572,
        compulsory_pct: 15.5,
    },
    PaperRow {
        bench: SpecBench::Parser,
        lin_ipc_pct: -16.0,
        lin_miss_pct: 35.0,
        sbar_ipc_pct: -0.5,
        delta_lt60_pct: 43.0,
        delta_avg: 190.0,
        table3_misses_k: 382,
        compulsory_pct: 20.3,
    },
    PaperRow {
        bench: SpecBench::Sixtrack,
        lin_ipc_pct: 10.0,
        lin_miss_pct: -3.0,
        sbar_ipc_pct: 10.0,
        delta_lt60_pct: 100.0,
        delta_avg: 0.0,
        table3_misses_k: 150,
        compulsory_pct: 20.6,
    },
    PaperRow {
        bench: SpecBench::Apsi,
        lin_ipc_pct: 4.7,
        lin_miss_pct: -32.0,
        sbar_ipc_pct: 4.7,
        delta_lt60_pct: 85.0,
        delta_avg: 34.0,
        table3_misses_k: 740,
        compulsory_pct: 22.8,
    },
    PaperRow {
        bench: SpecBench::Lucas,
        lin_ipc_pct: 1.3,
        lin_miss_pct: 0.0,
        sbar_ipc_pct: 1.3,
        delta_lt60_pct: 84.0,
        delta_avg: 31.0,
        table3_misses_k: 441,
        compulsory_pct: 41.6,
    },
    PaperRow {
        bench: SpecBench::Mgrid,
        lin_ipc_pct: -33.0,
        lin_miss_pct: 3.0,
        sbar_ipc_pct: -0.5,
        delta_lt60_pct: 18.0,
        delta_avg: 187.0,
        table3_misses_k: 1_932,
        compulsory_pct: 46.6,
    },
];

/// Looks up the paper row for a benchmark.
pub fn paper_row(bench: SpecBench) -> &'static PaperRow {
    PAPER_ROWS
        .iter()
        .find(|r| r.bench == bench)
        .expect("every benchmark has a paper row")
}

/// Figure 1's per-iteration outcome for each policy: `(misses, stalls)`.
pub mod figure1 {
    /// Belady's OPT: 4 misses, 4 long-latency stalls per iteration.
    pub const OPT: (u64, u64) = (4, 4);
    /// LRU (footnote 2): 6 misses, 4 long-latency stalls per iteration.
    pub const LRU: (u64, u64) = (6, 4);
    /// The MLP-aware policy: 6 misses, 2 long-latency stalls per
    /// iteration.
    pub const MLP_AWARE: (u64, u64) = (6, 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_benchmarks_in_order() {
        assert_eq!(PAPER_ROWS.len(), SpecBench::ALL.len());
        for (row, bench) in PAPER_ROWS.iter().zip(SpecBench::ALL.iter()) {
            assert_eq!(row.bench, *bench);
        }
    }

    #[test]
    fn lookup_works() {
        assert_eq!(paper_row(SpecBench::Mgrid).lin_ipc_pct, -33.0);
        assert_eq!(paper_row(SpecBench::Art).lin_miss_pct, -31.0);
    }

    #[test]
    fn lin_hostile_trio_is_negative() {
        for b in [SpecBench::Bzip2, SpecBench::Parser, SpecBench::Mgrid] {
            assert!(paper_row(b).lin_ipc_pct < 0.0);
        }
    }
}
