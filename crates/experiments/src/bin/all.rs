//! Runs every experiment binary's logic in sequence (by invoking the
//! sibling binaries), regenerating all of the paper's tables and figures.
//!
//! Prefer running individual binaries while iterating; this one exists so
//! `cargo run --bin all --release` reproduces the full evaluation in one
//! shot.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3b",
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "cbs_compare",
    "overhead",
    "ablate_adders",
    "ablate_lambda",
    "ablate_stall_accounting",
    "care_alternatives",
    "sweep_cache",
    "sweep_latency",
    "sweep_mlp_limits",
    "icache_effects",
    "wrong_path_effects",
    "prefetch_effects",
    "measure_p",
    "multi_seed",
];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================");
        let path = dir.join(name);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name} exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!("could not launch {name} ({e}); build the workspace binaries first");
                failures.push(*name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
