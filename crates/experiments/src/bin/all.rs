#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Runs every experiment binary (by invoking the siblings), regenerating
//! all of the paper's tables and figures.
//!
//! The children run **concurrently** on a [`WorkerPool`] sized by
//! `--jobs`/`-j` (default: hardware threads, `MLPSIM_JOBS` override), but
//! their stdout is captured and printed strictly in the order listed in
//! [`EXPERIMENTS`], so the combined report is byte-identical at any job
//! count. Each child itself runs with `--jobs 1` — the parallelism budget
//! is spent across experiments, not multiplied within them.
//!
//! `--telemetry <path>` is forwarded to every child with the experiment
//! name spliced into the file name (`out.ndjson` → `out.fig9.ndjson`), so
//! concurrent children never share an event stream. Unrecognised
//! arguments are an error (exit 2): a typo like `--job 4` silently
//! running the whole evaluation serially would be worse than a refusal.
//!
//! Prefer running individual binaries while iterating; this one exists so
//! `cargo run -p mlpsim-experiments --bin all --release` reproduces the
//! full evaluation in one shot.

use mlpsim_exec::WorkerPool;
use std::io::Write;
use std::process::{Command, ExitCode};

const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3b",
    "table1",
    "table2",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "cbs_compare",
    "overhead",
    "ablate_adders",
    "ablate_lambda",
    "ablate_stall_accounting",
    "care_alternatives",
    "sweep_cache",
    "sweep_latency",
    "sweep_mlp_limits",
    "icache_effects",
    "wrong_path_effects",
    "prefetch_effects",
    "measure_p",
    "multi_seed",
];

struct CliArgs {
    jobs: usize,
    telemetry: Option<String>,
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let parse_jobs = |raw: &str| -> Result<usize, String> {
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("--jobs wants a positive integer, got {raw:?}")),
        }
    };
    let mut jobs = None;
    let mut telemetry = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" || a == "-j" {
            match it.next() {
                Some(n) => jobs = Some(parse_jobs(n)?),
                None => return Err(format!("{a} requires a worker-count argument")),
            }
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(n)?);
        } else if a == "--telemetry" {
            match it.next() {
                Some(p) if p.starts_with("--") => {
                    return Err(format!(
                        "--telemetry requires a path argument, got the flag-like {p:?} \
                         (use --telemetry={p} for a path that really starts with \"--\")"
                    ));
                }
                Some(p) => telemetry = Some(p.clone()),
                None => return Err("--telemetry requires a path argument".into()),
            }
        } else if let Some(p) = a.strip_prefix("--telemetry=") {
            if p.is_empty() {
                return Err("--telemetry= requires a non-empty path".into());
            }
            telemetry = Some(p.to_string());
        } else if let Some(n) = a.strip_prefix("-j") {
            jobs = Some(parse_jobs(n)?);
        } else {
            return Err(format!(
                "unrecognised argument {a:?} (supported: --jobs/-j <N>, --telemetry <path>)"
            ));
        }
    }
    Ok(CliArgs {
        jobs: jobs.unwrap_or_else(mlpsim_exec::default_jobs),
        telemetry,
    })
}

/// Splices `name` into `base`'s file name before its extension:
/// `out.ndjson` → `out.fig9.ndjson`, `telemetry` → `telemetry.fig9`.
fn telemetry_path_for(base: &str, name: &str) -> String {
    match base.rfind('.') {
        // Split only at a dot strictly inside the file-name component, so
        // directory dots (`run.d/stream`) and hidden files (`.hidden`)
        // fall through to plain appending.
        Some(i) if i > base.rfind('/').map_or(0, |s| s + 1) => {
            format!("{}.{name}{}", &base[..i], &base[i..])
        }
        _ => format!("{base}.{name}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate own executable ({e})");
            return ExitCode::from(3);
        }
    };
    let Some(dir) = exe.parent().map(std::path::Path::to_path_buf) else {
        eprintln!(
            "error: executable path {} has no parent directory",
            exe.display()
        );
        return ExitCode::from(3);
    };

    let pool = WorkerPool::new(cli.jobs);
    let launches = EXPERIMENTS
        .iter()
        .map(|&name| {
            let path = dir.join(name);
            let telemetry = cli
                .telemetry
                .as_deref()
                .map(|base| telemetry_path_for(base, name));
            move || {
                let mut cmd = Command::new(&path);
                // One worker thread per child: the pool already spreads
                // `cli.jobs` ways across experiments, and `-j1` children
                // keep `all --jobs 1` exactly as serial as it claims.
                cmd.arg("--jobs").arg("1");
                if let Some(t) = &telemetry {
                    cmd.arg(format!("--telemetry={t}"));
                }
                cmd.output()
            }
        })
        .collect();
    let outputs = pool.map_ordered(launches);

    let mut failures = Vec::new();
    for (&name, out) in EXPERIMENTS.iter().zip(outputs) {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================");
        match out {
            Ok(o) => {
                // A broken stdout pipe (e.g. `all | head`) is a signal to
                // stop producing output, not a crash.
                if std::io::stdout().write_all(&o.stdout).is_err()
                    || std::io::stderr().write_all(&o.stderr).is_err()
                {
                    return ExitCode::from(3);
                }
                if !o.status.success() {
                    eprintln!("{name} exited with {}", o.status);
                    failures.push(name);
                }
            }
            Err(e) => {
                eprintln!("could not launch {name} ({e}); build the workspace binaries first");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("\nFailed experiments: {failures:?}");
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn recognised_flags_parse() {
        let cli = parse_args(&strings(&["--jobs", "3", "--telemetry", "out.ndjson"])).unwrap();
        assert_eq!(cli.jobs, 3);
        assert_eq!(cli.telemetry.as_deref(), Some("out.ndjson"));
        assert_eq!(parse_args(&strings(&["-j4"])).unwrap().jobs, 4);
        assert_eq!(parse_args(&strings(&["--jobs=2"])).unwrap().jobs, 2);
        assert_eq!(
            parse_args(&strings(&["--telemetry=t.ndjson"]))
                .unwrap()
                .telemetry
                .as_deref(),
            Some("t.ndjson")
        );
    }

    #[test]
    fn unrecognised_flags_are_errors() {
        for bad in [
            &["--job", "4"][..],
            &["--frobnicate"],
            &["extra"],
            &["--jobs", "0"],
            &["--telemetry"],
            &["--telemetry", "--jobs"],
        ] {
            assert!(parse_args(&strings(bad)).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn telemetry_suffix_lands_before_extension() {
        assert_eq!(telemetry_path_for("out.ndjson", "fig9"), "out.fig9.ndjson");
        assert_eq!(
            telemetry_path_for("runs/out.ndjson", "fig9"),
            "runs/out.fig9.ndjson"
        );
        assert_eq!(telemetry_path_for("telemetry", "fig9"), "telemetry.fig9");
        assert_eq!(telemetry_path_for("./noext", "fig9"), "./noext.fig9");
        assert_eq!(telemetry_path_for(".hidden", "fig9"), ".hidden.fig9");
        assert_eq!(
            telemetry_path_for("run.d/stream", "fig9"),
            "run.d/stream.fig9"
        );
    }
}
