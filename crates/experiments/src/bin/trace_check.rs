//! `trace-check` — validate a Chrome trace-event JSON file.
//!
//! ```text
//! trace-check <trace.json>
//! ```
//!
//! Checks the file any `--trace-out`-enabled binary wrote:
//!
//! * the document parses and carries a `traceEvents` array,
//! * every complete (`"ph": "X"`) slice has numeric `ts`/`dur` and
//!   `pid`/`tid` row coordinates,
//! * within each `(pid, tid)` row the slices are disjoint in file order —
//!   MSHR slot occupancies and stall episodes are interval timelines, so
//!   an overlap means the simulator emitted a corrupt stream.
//!
//! Exits 0 on a valid trace, [`EXIT_USAGE`](mlpsim_experiments::cli) on
//! bad arguments, `EXIT_IO` on an unreadable file, and 1 on a trace that
//! parses but violates the interval contract.

use mlpsim_experiments::cli::{io_error, usage_error};
use mlpsim_telemetry::span::check_disjoint;
use mlpsim_telemetry::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        return usage_error("usage: trace-check <trace.json>");
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return io_error(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: invalid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        eprintln!("{path}: no traceEvents array");
        return ExitCode::FAILURE;
    };

    // Row timelines in file order; names for diagnostics.
    let mut rows: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    let mut names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut slices = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let pid = ev.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        match ph {
            "X" => {
                let (Some(ts), Some(dur)) = (
                    ev.get("ts").and_then(Json::as_u64),
                    ev.get("dur").and_then(Json::as_u64),
                ) else {
                    eprintln!("{path}: slice #{i} lacks numeric ts/dur");
                    return ExitCode::FAILURE;
                };
                rows.entry((pid, tid)).or_default().push((ts, ts + dur));
                slices += 1;
            }
            "M" => {
                if let Some(name) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                {
                    names.insert((pid, tid), name.to_string());
                }
            }
            other => {
                eprintln!("{path}: event #{i} has unexpected phase {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    for (coord, intervals) in &rows {
        if let Err(i) = check_disjoint(intervals) {
            let row = names
                .get(coord)
                .cloned()
                .unwrap_or_else(|| format!("pid {} tid {}", coord.0, coord.1));
            eprintln!(
                "{path}: overlapping slices on row {row:?}: interval #{i} \
                 ({:?}) starts before its predecessor ends",
                intervals[i]
            );
            return ExitCode::FAILURE;
        }
    }

    let dropped = doc
        .get("droppedSliceCount")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    println!(
        "{path}: ok — {slices} slices over {} rows, all disjoint{}",
        rows.len(),
        if dropped > 0 {
            format!(" ({dropped} slices dropped at the cap)")
        } else {
            String::new()
        }
    );
    ExitCode::SUCCESS
}
