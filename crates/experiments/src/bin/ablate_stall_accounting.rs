//! Footnote-4 ablation: accrue `mlp-cost` every cycle (Algorithm 1 as
//! written) vs only during full-window stall cycles.
//!
//! The paper: "we did not find any significant difference in the relative
//! value of mlp_cost or the performance improvement provided by our
//! proposed replacement scheme." This binary measures both accountings on
//! a representative subset.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::{CostAccounting, SystemConfig};
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

const BENCHES: [SpecBench; 3] = [SpecBench::Mcf, SpecBench::Vpr, SpecBench::Art];
const MODES: [(&str, CostAccounting); 2] = [
    ("all-cycles", CostAccounting::AllCycles),
    ("stall-only", CostAccounting::StallCyclesOnly),
];

fn main() {
    println!("Footnote-4 ablation — all-cycles vs stall-cycles-only cost accounting\n");
    let mut t = Table::with_headers(&["bench", "accounting", "meanCost", "iso%", "LINipc%"]);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        BENCHES
            .map(|b| move || Arc::new(b.generate(200_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for (_, accounting) in MODES {
            for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    cfg.cost_accounting = accounting;
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in BENCHES {
        for (label, _) in MODES {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            t.row(vec![
                bench.name().into(),
                label.into(),
                format!("{:.1}", lru.cost_hist.mean()),
                format!("{:.1}", lru.cost_hist.percent(7)),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expected (paper footnote 4): absolute costs shrink a little under stall-only");
    println!("accounting while the relative values — and hence LIN's decisions — barely");
    println!("move (mcf, vpr). A caveat the first-order model makes visible: populations");
    println!("whose cost sits on a 60-cycle quantization edge can flip buckets under the");
    println!("alternative accounting and change how strongly LIN pins them (art).");
}
