//! Benchmarks the analytical sweep planner (`mlpsim-model`): profiles
//! every bundled trace once, times pure cell scoring (the planner's inner
//! loop — the thing that must be orders of magnitude cheaper than
//! simulation for estimate→prune→simulate to pay off), checks the LRU
//! miss-rate model against the real simulator on every trace, and records
//! the fig5-grid pruned fraction at the default margin. Results land in
//! `BENCH_estimate.json` so future model changes have a trajectory to
//! regress against.
//!
//! Two gates fail the binary outright rather than merely reporting:
//! scoring throughput must clear 10,000 cells/sec, and every per-trace
//! LRU estimate must land within its stated error band.

use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::cli;
use mlpsim_experiments::runner::{jobs_from_env, run_matrix, RunOptions};
use mlpsim_model::characterize::{profile_trace, CharacterizeConfig, TraceProfile};
use mlpsim_model::plan::{score_cell, DEFAULT_PRUNE_MARGIN};
use mlpsim_trace::spec::SpecBench;
use std::fmt::Write as _;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

const ACCESSES: usize = 120_000;
/// Repeat the grid this many times so the scoring timer integrates over
/// thousands of cells instead of one noisy microsecond-scale pass.
const SCORE_ROUNDS: usize = 200;
const MIN_CELLS_PER_SEC: f64 = 10_000.0;

fn main() -> ExitCode {
    let jobs = jobs_from_env();
    let opts = RunOptions {
        accesses: ACCESSES,
        jobs,
        ..RunOptions::default()
    };
    let policies = [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ];
    println!(
        "bench_estimate — {} benches, {} accesses each, -j{jobs}",
        SpecBench::ALL.len(),
        ACCESSES
    );

    // Phase 1: one-pass characterization of every bundled trace.
    let t0 = Instant::now();
    let profiles: Vec<TraceProfile> = SpecBench::ALL
        .iter()
        .map(|b| {
            let t = b.generate(ACCESSES, opts.seed);
            profile_trace(&t, &CharacterizeConfig::baseline())
        })
        .collect();
    let profile_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("profile: {profile_ms:8.1} ms for {} traces", profiles.len());

    // Phase 2: pure cell scoring — the planner's per-cell cost.
    let geometry = Geometry::baseline_l2();
    let t1 = Instant::now();
    let mut scored = 0u64;
    let mut checksum = 0.0f64;
    for _ in 0..SCORE_ROUNDS {
        for p in &profiles {
            for policy in &policies {
                let s = score_cell(p, geometry, &policy.label(), DEFAULT_PRUNE_MARGIN);
                checksum += s.estimate.miss_rate;
                scored += 1;
            }
        }
    }
    let score_s = t1.elapsed().as_secs_f64();
    let cells_per_sec = scored as f64 / score_s;
    println!(
        "score:   {:8.1} ms for {scored} cells = {cells_per_sec:.0} cells/sec \
         (checksum {checksum:.3})",
        score_s * 1e3
    );
    assert!(
        cells_per_sec >= MIN_CELLS_PER_SEC,
        "planner scoring too slow: {cells_per_sec:.0} cells/sec < {MIN_CELLS_PER_SEC} \
         — estimate-then-prune no longer pays for itself"
    );

    // Phase 3: model error — the LRU estimate vs the real simulator.
    let t2 = Instant::now();
    let matrix = run_matrix(&SpecBench::ALL, &[PolicyKind::Lru], &opts);
    let simulate_ms = t2.elapsed().as_secs_f64() * 1e3;
    let mut per_trace = String::new();
    let mut max_abs_err = 0.0f64;
    for ((bench, profile), row) in SpecBench::ALL.iter().zip(&profiles).zip(&matrix) {
        let s = score_cell(profile, geometry, "lru", DEFAULT_PRUNE_MARGIN);
        let sim = row[0].l2.miss_ratio();
        let err = (s.estimate.miss_rate - sim).abs();
        max_abs_err = max_abs_err.max(err);
        println!(
            "model-check bench={} est_miss_rate={:.4} sim_miss_rate={sim:.4} \
             abs_err={err:.4} band={:.4}",
            bench.name(),
            s.estimate.miss_rate,
            s.estimate.band,
        );
        assert!(
            err <= s.estimate.band,
            "LRU model error {err:.4} exceeds its stated band {:.4} on {}",
            s.estimate.band,
            bench.name()
        );
        let _ = write!(
            per_trace,
            "{}    {{\"bench\": \"{}\", \"est\": {:.4}, \"sim\": {sim:.4}, \
             \"abs_err\": {err:.4}, \"band\": {:.4}}}",
            if per_trace.is_empty() { "" } else { ",\n" },
            bench.name(),
            s.estimate.miss_rate,
            s.estimate.band,
        );
    }

    // Phase 4: the fig5 grid's pruned fraction at the default margin.
    let fig5_policies = [PolicyKind::Lru, PolicyKind::lin4()];
    let mut pruned = 0usize;
    let mut total = 0usize;
    for p in &profiles {
        for policy in &fig5_policies {
            total += 1;
            pruned +=
                usize::from(score_cell(p, geometry, &policy.label(), DEFAULT_PRUNE_MARGIN).pruned);
        }
    }
    let pruned_fraction = pruned as f64 / total as f64;
    println!(
        "fig5 grid at margin {DEFAULT_PRUNE_MARGIN}: pruned {pruned}/{total} \
         ({:.1}%); simulating the LRU column took {simulate_ms:.1} ms",
        100.0 * pruned_fraction
    );

    let json = format!(
        "{{\n  \"accesses\": {ACCESSES},\n  \"benches\": {},\n  \"jobs\": {jobs},\n  \
         \"profile_ms\": {profile_ms:.1},\n  \"score_cells\": {scored},\n  \
         \"score_ms\": {:.1},\n  \"cells_per_sec\": {cells_per_sec:.0},\n  \
         \"min_cells_per_sec\": {MIN_CELLS_PER_SEC},\n  \
         \"simulate_lru_ms\": {simulate_ms:.1},\n  \
         \"max_abs_err_lru\": {max_abs_err:.4},\n  \
         \"fig5_pruned_fraction\": {pruned_fraction:.3},\n  \
         \"prune_margin\": {DEFAULT_PRUNE_MARGIN},\n  \
         \"per_trace\": [\n{per_trace}\n  ]\n}}\n",
        SpecBench::ALL.len(),
        score_s * 1e3,
    );
    let path = "BENCH_estimate.json";
    let write = std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes()));
    if let Err(e) = write {
        return cli::io_error(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
