//! §6.6's comparison: SBAR vs CBS-global vs CBS-local.
//!
//! The paper: except for art and ammp, SBAR is within 1% of the best CBS
//! variant, while requiring 64× fewer ATD entries. This binary also covers
//! the footnote-7 ablation: CBS-global with a 6-bit vs 7-bit PSEL.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Section 6.6 — IPC improvement (%) over LRU: SBAR vs CBS variants\n");
    let mut t = Table::with_headers(&["bench", "SBAR", "CBS-global", "CBS-local", "SBAR-best"]);
    let mut within_1pct = 0;
    let mut total = 0;
    let matrix = run_matrix(
        &SpecBench::ALL,
        &[
            PolicyKind::Lru,
            PolicyKind::sbar_default(),
            PolicyKind::CbsGlobal,
            PolicyKind::CbsLocal,
        ],
        &RunOptions::from_env(),
    );
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let lru = &results[0];
        let sbar = percent_improvement(results[1].ipc(), lru.ipc());
        let global = percent_improvement(results[2].ipc(), lru.ipc());
        let local = percent_improvement(results[3].ipc(), lru.ipc());
        let best_cbs = global.max(local);
        let gap = sbar - best_cbs;
        total += 1;
        if gap.abs() <= 1.0 || sbar >= best_cbs {
            within_1pct += 1;
        }
        t.row(vec![
            bench.name().into(),
            format!("{sbar:+.1}"),
            format!("{global:+.1}"),
            format!("{local:+.1}"),
            format!("{gap:+.1}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{within_1pct}/{total} benchmarks have SBAR within 1% of (or above) the best CBS\n\
         variant; SBAR uses 64x fewer ATD entries (32 leader sets x 1 ATD vs 1024 sets x 2 ATDs)."
    );
}
