//! Internal diagnostic: per-address-slot miss breakdown for one benchmark
//! under LRU vs LIN, to see which workload component a policy is hurting.
//!
//! Usage: `debug_regions [bench]` (default: twolf).

use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_experiments::cli;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let bench = match cli::bench_from_arg(std::env::args().nth(1), "twolf") {
        Ok(b) => b,
        Err(msg) => return cli::usage_error(&msg),
    };
    let name = bench.name();
    let trace = bench.generate(420_000, 42);
    let mut acc: HashMap<u64, u64> = HashMap::new();
    for a in trace.iter() {
        *acc.entry(a.line >> 24).or_default() += 1;
    }
    println!("bench {name}: {} accesses", trace.len());
    for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
        let mut cfg = SystemConfig::baseline(policy);
        cfg.collect_miss_log = true;
        let r = System::new(cfg).run(trace.iter());
        println!(
            "{:8} ipc {:.3} l2miss {:6} iso% {:4.1} meanCost {:3.0} stallEp {:6} memStall {}",
            r.policy,
            r.ipc(),
            r.l2.misses,
            r.cost_hist.percent(7),
            r.cost_hist.mean(),
            r.stall_episodes,
            r.mem_stall_cycles,
        );
        let mut slot_miss: HashMap<u64, (u64, f64)> = HashMap::new();
        for &(line, cost) in &r.miss_log {
            let e = slot_miss.entry(line >> 24).or_default();
            e.0 += 1;
            e.1 += cost;
        }
        let mut slots: Vec<_> = slot_miss.iter().collect();
        slots.sort_by_key(|(slot, _)| **slot);
        for (slot, (m, cost_sum)) in slots {
            println!(
                "   slot{}: {:7} misses (of {:7} acc) avgCost {:4.0}",
                slot,
                m,
                acc.get(slot).copied().unwrap_or(0),
                cost_sum / *m as f64
            );
        }
    }
    ExitCode::SUCCESS
}
