//! Figure 3(b): the quantization of `mlp-cost` into the 3-bit `cost_q`.

use mlpsim_analysis::table::Table;
use mlpsim_core::quant::{bucket_label, bucket_range, quantize};

fn main() {
    println!("Figure 3(b) — quantization of mlp-cost\n");
    let mut t = Table::with_headers(&["mlp-cost (cycles)", "cost_q", "axis label"]);
    for q in 0u8..=7 {
        let (lo, hi) = bucket_range(q);
        let range = if hi.is_infinite() {
            format!("{lo:.0}+")
        } else {
            format!("{lo:.0} to {:.0}", hi - 1.0)
        };
        t.row(vec![range, format!("{q}"), bucket_label(q)]);
    }
    println!("{}", t.render());
    // Spot checks of the mapping boundaries.
    for (cost, expect) in [(0.0, 0u8), (59.0, 0), (60.0, 1), (444.0, 7)] {
        assert_eq!(quantize(cost), expect);
    }
    println!(
        "An isolated miss (444 cycles) quantizes to cost_q = {}.",
        quantize(444.0)
    );
}
