//! `telemetry-report` — fold an NDJSON telemetry stream into human tables.
//!
//! ```text
//! telemetry-report <events.ndjson>
//! telemetry-report --traces <traces.json>
//! ```
//!
//! Produces, from a stream written by any `--telemetry`-enabled binary:
//!
//! * a per-run overview (policy, instructions, misses, peak MLP),
//! * PSEL activity per dueling unit: update/flip counts, saturation
//!   fraction, and dwell times between MSB flips (how long the follower
//!   sets stay on one policy before switching),
//! * a time-weighted MSHR occupancy histogram — the observed distribution
//!   of outstanding misses, i.e. the MLP the cost model is measuring,
//! * per-set L2 miss skew (are misses concentrated in a few hot sets?),
//! * the cost_q transition matrix: for consecutive misses to the *same
//!   line*, how the quantized MLP-based cost moved between buckets
//!   (the paper's §4 stability argument: most mass near the diagonal),
//! * the stall attribution ledger (`stall_attrib` events folded by
//!   (set, cost_q, policy)): top sets by attributed stall, per-cost_q
//!   stall shares (the stall-weighted sibling of Fig. 5), LIN-vs-LRU
//!   attributed-stall split per set, and the reconciliation line against
//!   `run_end`'s `mem_stall_cycles`,
//! * a log-bucketed stall-episode-length histogram from `stall_span`
//!   events,
//! * a host-side perf section from `perf_phase` events (written by
//!   prof-built binaries such as `bench_core --telemetry`): per-phase
//!   call counts and inclusive/exclusive milliseconds of the
//!   *simulator's* hot loop.
//!
//! With `--traces`, the input is instead a `GET /debug/traces` dump from
//! `mlpsim-serve`'s flight recorder (`mlpsim-client traces > traces.json`):
//! the report lists the slowest requests with a per-span breakdown of
//! each, and flags any trace whose wall-time reconciliation residue
//! (root duration minus the root's direct children) exceeds 1% — time
//! the span tree fails to explain.

use mlpsim_analysis::ephist::{EpisodeHistogram, EPISODE_BUCKETS};
use mlpsim_analysis::stats::percentile;
use mlpsim_analysis::table::Table;
use mlpsim_core::quant::bucket_label;
use mlpsim_telemetry::{read_ndjson, Event, Json, StallLedger};
use std::collections::HashMap;
use std::process::ExitCode;

/// Render the serve-tier traces section from a `GET /debug/traces` dump:
/// slowest requests first with per-span breakdowns, reconciliation
/// residue over 1% flagged.
fn traces_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Ok(Json::Arr(mut traces)) = Json::parse(&text) else {
        eprintln!("{path}: expected a JSON array of traces (a GET /debug/traces body)");
        return ExitCode::FAILURE;
    };
    if traces.is_empty() {
        println!("{path}: no traces in dump");
        return ExitCode::SUCCESS;
    }
    let dur_of = |t: &Json| t.get("dur_us").and_then(|d| d.as_f64()).unwrap_or(0.0);
    traces.sort_by(|a, b| dur_of(b).partial_cmp(&dur_of(a)).unwrap_or(std::cmp::Ordering::Equal));

    let mut overview = Table::with_headers(&["trace", "request", "status", "dur ms", "residue%", ""]);
    let mut flagged = 0usize;
    for t in &traces {
        let residue = t
            .get("residue_pct")
            .and_then(|r| r.as_f64())
            .unwrap_or(0.0);
        let over = residue > 1.0;
        if over {
            flagged += 1;
        }
        overview.row(vec![
            t.get("trace_id")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            t.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
            t.get("status")
                .and_then(Json::as_u64)
                .map_or_else(|| "?".into(), |s| s.to_string()),
            format!("{:.3}", dur_of(t) / 1e3),
            format!("{residue:.2}"),
            if over { "<-- UNEXPLAINED >1%".into() } else { String::new() },
        ]);
    }
    println!(
        "== Traces ({} retained, slowest first; {flagged} with >1% of wall time \
         unexplained by spans) ==\n{}",
        traces.len(),
        overview.render()
    );

    for t in traces.iter().take(5) {
        let Some(Json::Arr(spans)) = t.get("spans") else {
            continue;
        };
        let total_us = dur_of(t).max(1.0);
        let mut st = Table::with_headers(&["span", "start +us", "dur us", "% of req"]);
        for s in spans {
            let dur = s.get("dur_us").and_then(|d| d.as_f64()).unwrap_or(0.0);
            st.row(vec![
                s.get("name").and_then(Json::as_str).unwrap_or("?").to_string(),
                s.get("start_us")
                    .and_then(Json::as_u64)
                    .map_or_else(|| "?".into(), |v| v.to_string()),
                format!("{dur:.0}"),
                format!("{:.1}", 100.0 * dur / total_us),
            ]);
        }
        println!(
            "-- {} {} ({:.3} ms) --\n{}",
            t.get("trace_id").and_then(Json::as_str).unwrap_or("?"),
            t.get("name").and_then(Json::as_str).unwrap_or("?"),
            dur_of(t) / 1e3,
            st.render()
        );
    }
    ExitCode::SUCCESS
}

/// Per-(run, unit, index) flip tracking for dwell times.
#[derive(Default)]
struct FlipTrack {
    last_flip_seq: Option<u64>,
}

#[derive(Default)]
struct UnitStats {
    updates: u64,
    saturated_updates: u64,
    flips: u64,
    dwells: Vec<f64>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--traces") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("usage: telemetry-report --traces <traces.json>");
            return ExitCode::FAILURE;
        };
        return traces_report(path);
    }
    let Some(path) = args.first() else {
        eprintln!("usage: telemetry-report <events.ndjson> | --traces <traces.json>");
        return ExitCode::FAILURE;
    };
    let events = match read_ndjson(path) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if events.is_empty() {
        println!("{path}: no events");
        return ExitCode::SUCCESS;
    }
    println!("{path}: {} events\n", events.len());

    // ---- Pass over the stream, segmented by run_start markers. ----
    let mut runs = Table::with_headers(&[
        "run",
        "label",
        "policy",
        "insts",
        "cycles",
        "l2 misses",
        "peak MLP",
    ]);
    let mut run_idx: u64 = 0;
    let mut units: HashMap<String, UnitStats> = HashMap::new();
    let mut flip_tracks: HashMap<(u64, String, u64), FlipTrack> = HashMap::new();
    // Time-weighted MSHR occupancy: (last_cycle, last_live) per run.
    let mut occ_cycles: HashMap<u64, u64> = HashMap::new();
    let mut occ_prev: Option<(u64, u64)> = None;
    let mut peak_demand_live: u64 = 0;
    let mut set_misses: HashMap<u64, u64> = HashMap::new();
    // cost_q transitions keyed by line (within a run).
    let mut last_cost_q: HashMap<(u64, u64), u8> = HashMap::new();
    let mut transitions = [[0u64; 8]; 8];
    // Stall attribution: the folded ledger, the run_end totals it must
    // reconcile against, and the span-length histogram.
    let mut ledger = StallLedger::new();
    let mut run_end_stall: u64 = 0;
    let mut saw_run_end = false;
    let mut episodes = EpisodeHistogram::new();
    // Host-side profiler phases, in stream order: (name, calls, incl, excl).
    let mut perf_phases: Vec<(String, u64, u64, u64)> = Vec::new();

    for ev in &events {
        ledger.observe(ev);
        match ev {
            Event::RunStart { label, policy, .. } => {
                run_idx += 1;
                occ_prev = None;
                runs.row(vec![
                    run_idx.to_string(),
                    label.clone(),
                    policy.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Event::RunEnd {
                label,
                policy,
                cycle,
                instructions,
                l2_misses,
                peak_mlp,
                mem_stall_cycles,
            } => {
                run_end_stall += mem_stall_cycles;
                saw_run_end = true;
                // Rewrite the run's row with its final numbers (or add one
                // if the stream started mid-run).
                let row = vec![
                    run_idx.max(1).to_string(),
                    label.clone(),
                    policy.clone(),
                    instructions.to_string(),
                    cycle.to_string(),
                    l2_misses.to_string(),
                    peak_mlp.to_string(),
                ];
                if runs.is_empty() {
                    runs.row(row);
                } else {
                    runs.replace_last(row);
                }
            }
            Event::PselUpdate {
                unit, saturated, ..
            } => {
                let u = units.entry(unit.clone()).or_default();
                u.updates += 1;
                if *saturated {
                    u.saturated_updates += 1;
                }
            }
            Event::PselFlip {
                unit, index, seq, ..
            } => {
                let u = units.entry(unit.clone()).or_default();
                u.flips += 1;
                let track = flip_tracks
                    .entry((run_idx, unit.clone(), *index))
                    .or_default();
                if let Some(prev) = track.last_flip_seq {
                    u.dwells.push(seq.saturating_sub(prev) as f64);
                }
                track.last_flip_seq = Some(*seq);
            }
            Event::MshrAlloc {
                cycle,
                live,
                demand_live,
                ..
            } => {
                if let Some((pc, pl)) = occ_prev {
                    *occ_cycles.entry(pl).or_default() += cycle.saturating_sub(pc);
                }
                occ_prev = Some((*cycle, *live));
                peak_demand_live = peak_demand_live.max(*demand_live);
            }
            Event::MshrRelease { cycle, live, .. } => {
                if let Some((pc, pl)) = occ_prev {
                    *occ_cycles.entry(pl).or_default() += cycle.saturating_sub(pc);
                }
                occ_prev = Some((*cycle, *live));
            }
            Event::CacheMiss { level: 2, set, .. } => {
                *set_misses.entry(*set).or_default() += 1;
            }
            Event::Serviced { line, cost_q, .. } => {
                let q = (*cost_q).min(7) as usize;
                if let Some(prev) = last_cost_q.insert((run_idx, *line), *cost_q) {
                    transitions[prev.min(7) as usize][q] += 1;
                }
            }
            Event::StallSpan { begin, end, .. } => {
                episodes.record(end.saturating_sub(*begin));
            }
            Event::PerfPhase {
                name,
                calls,
                incl_ns,
                excl_ns,
            } => {
                perf_phases.push((name.clone(), *calls, *incl_ns, *excl_ns));
            }
            _ => {}
        }
    }

    println!("== Runs ==\n{}", runs.render());

    // ---- PSEL flips & dwell times. ----
    if units.is_empty() {
        println!("== PSEL activity ==\n(no dueling-policy events in stream)\n");
    } else {
        let mut t = Table::with_headers(&[
            "unit",
            "updates",
            "saturated%",
            "flips",
            "dwell p50",
            "dwell p95",
        ]);
        let mut names: Vec<&String> = units.keys().collect();
        names.sort();
        for name in names {
            let u = &units[name];
            let sat = if u.updates == 0 {
                0.0
            } else {
                100.0 * u.saturated_updates as f64 / u.updates as f64
            };
            t.row(vec![
                name.clone(),
                u.updates.to_string(),
                format!("{sat:.1}"),
                u.flips.to_string(),
                format!("{:.0}", percentile(&u.dwells, 50.0)),
                format!("{:.0}", percentile(&u.dwells, 95.0)),
            ]);
        }
        println!(
            "== PSEL activity (dwell = accesses between MSB flips) ==\n{}",
            t.render()
        );
    }

    // ---- MSHR occupancy histogram. ----
    if occ_cycles.is_empty() {
        println!("== MSHR occupancy ==\n(no MSHR events in stream)\n");
    } else {
        let total: u64 = occ_cycles.values().sum();
        let max_occ = *occ_cycles
            .keys()
            .max()
            .expect("is_empty checked in the branch above");
        let mut t = Table::with_headers(&["outstanding", "cycles", "%", ""]);
        for occ in 0..=max_occ {
            let c = occ_cycles.get(&occ).copied().unwrap_or(0);
            let pct = 100.0 * c as f64 / total.max(1) as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            t.row(vec![
                occ.to_string(),
                c.to_string(),
                format!("{pct:.1}"),
                bar,
            ]);
        }
        println!(
            "== MSHR occupancy (time-weighted; peak demand MLP observed: {peak_demand_live}) ==\n{}",
            t.render()
        );
    }

    // ---- Per-set miss skew. ----
    if set_misses.is_empty() {
        println!("== L2 per-set miss skew ==\n(no L2 miss events in stream)\n");
    } else {
        let total: u64 = set_misses.values().sum();
        let sets = set_misses.len() as u64;
        let mean = total as f64 / sets as f64;
        let mut hot: Vec<(u64, u64)> = set_misses.iter().map(|(&s, &c)| (s, c)).collect();
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut t = Table::with_headers(&["set", "misses", "x mean"]);
        for &(set, count) in hot.iter().take(8) {
            t.row(vec![
                set.to_string(),
                count.to_string(),
                format!("{:.2}", count as f64 / mean),
            ]);
        }
        println!(
            "== L2 per-set miss skew ({total} misses over {sets} sets, mean {mean:.1}/set) ==\n{}",
            t.render()
        );
    }

    // ---- cost_q transition matrix. ----
    let trans_total: u64 = transitions.iter().flatten().sum();
    if trans_total == 0 {
        println!("== cost_q transitions ==\n(no repeat-miss serviced events in stream)");
    } else {
        let mut headers = vec!["from\\to".to_string()];
        headers.extend((0..8).map(|q| q.to_string()));
        let mut t = Table::new(headers);
        let mut diagonal = 0u64;
        for (from, row) in transitions.iter().enumerate() {
            let mut cells = vec![from.to_string()];
            for (to, &n) in row.iter().enumerate() {
                if from == to {
                    diagonal += n;
                }
                cells.push(if n == 0 { ".".into() } else { n.to_string() });
            }
            t.row(cells);
        }
        println!(
            "== cost_q transitions (same line, consecutive misses; {trans_total} pairs, \
             {:.1}% on the diagonal) ==\n{}",
            100.0 * diagonal as f64 / trans_total as f64,
            t.render()
        );
    }

    // ---- Stall attribution ledger. ----
    if ledger.is_empty() {
        println!("\n== Stall attribution ledger ==\n(no stall_attrib events in stream)");
    } else {
        let total = ledger.total();
        println!(
            "\n== Stall attribution ledger ({total} cycles over {} (set, cost_q, policy) keys) ==",
            ledger.len()
        );
        // The invariant the simulator enforces under `--features
        // invariants`, re-checked here from the stream alone.
        if saw_run_end {
            if total == run_end_stall {
                println!(
                    "reconciliation: attributed {total} == run_end mem_stall_cycles \
                     {run_end_stall} (exact)"
                );
            } else {
                println!(
                    "reconciliation: attributed {total} != run_end mem_stall_cycles \
                     {run_end_stall} (STREAM INCONSISTENT — truncated file?)"
                );
            }
        } else {
            println!("reconciliation: no run_end in stream (truncated file?)");
        }

        let mut t = Table::with_headers(&["set", "stall cycles", "%"]);
        for (set, cycles) in ledger.top_sets(8) {
            t.row(vec![
                set.to_string(),
                cycles.to_string(),
                format!("{:.1}", 100.0 * cycles as f64 / total as f64),
            ]);
        }
        println!("\n-- top sets by attributed stall --\n{}", t.render());

        // The stall-weighted sibling of Fig. 5: not "how many misses had
        // cost_q = q" but "how many stall cycles did they cost".
        let by_q = ledger.cost_q_totals();
        let mut t = Table::with_headers(&["cost_q", "stall cycles", "%", ""]);
        for (q, &cycles) in by_q.iter().enumerate() {
            let pct = 100.0 * cycles as f64 / total as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            t.row(vec![
                bucket_label(q as u8),
                cycles.to_string(),
                format!("{pct:.1}"),
                bar,
            ]);
        }
        println!("-- stall share by cost_q bucket --\n{}", t.render());

        let split = ledger.lin_lru_split_by_set();
        if split.iter().any(|&(_, lin, lru)| lin > 0 && lru > 0) {
            let mut rows = split;
            rows.sort_by(|a, b| (b.1 + b.2).cmp(&(a.1 + a.2)).then(a.0.cmp(&b.0)));
            let mut t = Table::with_headers(&["set", "lin cycles", "lru cycles", "lin-lru"]);
            for &(set, lin, lru) in rows.iter().take(8) {
                t.row(vec![
                    set.to_string(),
                    lin.to_string(),
                    lru.to_string(),
                    format!("{:+}", lin as i64 - lru as i64),
                ]);
            }
            println!(
                "-- LIN vs LRU attributed stall per set (dueling runs/leader sets) --\n{}",
                t.render()
            );
        }
    }

    // ---- Stall episode lengths. ----
    if episodes.count() == 0 {
        println!("\n== Stall episodes ==\n(no stall_span events in stream)");
    } else {
        let max_b = episodes
            .max_bucket()
            .expect("count() > 0 in the branch above");
        let mut t = Table::with_headers(&["length (cycles)", "episodes", "%", ""]);
        for b in 0..=max_b.min(EPISODE_BUCKETS - 1) {
            let n = episodes.bucket(b);
            let pct = 100.0 * n as f64 / episodes.count() as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            t.row(vec![
                EpisodeHistogram::bucket_label(b),
                n.to_string(),
                format!("{pct:.1}"),
                bar,
            ]);
        }
        println!(
            "\n== Stall episodes ({} spans, {} cycles, mean {:.0}) ==\n{}",
            episodes.count(),
            episodes.total_cycles(),
            episodes.mean(),
            t.render()
        );
    }

    // ---- Host-side perf phases (simulator time, not simulated time). ----
    if perf_phases.is_empty() {
        println!("\n== Perf phases (host) ==\n(no perf_phase events in stream)");
    } else {
        let incl_total: u64 = perf_phases.iter().map(|&(_, _, incl, _)| incl).sum();
        let excl_total: u64 = perf_phases.iter().map(|&(_, _, _, excl)| excl).sum();
        let mut t = Table::with_headers(&["phase", "calls", "incl ms", "excl ms", "excl %", ""]);
        for (name, calls, incl_ns, excl_ns) in &perf_phases {
            let pct = 100.0 * *excl_ns as f64 / excl_total.max(1) as f64;
            let bar = "#".repeat((pct / 2.0).round() as usize);
            t.row(vec![
                name.clone(),
                calls.to_string(),
                format!("{:.2}", *incl_ns as f64 / 1e6),
                format!("{:.2}", *excl_ns as f64 / 1e6),
                format!("{pct:.1}"),
                bar,
            ]);
        }
        println!(
            "\n== Perf phases (host wall time of the simulator's hot loop; \
             {:.2} ms exclusive over {} phases, incl total {:.2} ms) ==\n{}",
            excl_total as f64 / 1e6,
            perf_phases.len(),
            incl_total as f64 / 1e6,
            t.render()
        );
    }
    ExitCode::SUCCESS
}
