//! Figure 5: the `mlp-cost` distribution under the baseline LRU and under
//! LIN(λ=4), with the inset ΔMISS / ΔIPC numbers.
//!
//! The paper's shape: for every benchmark except art and galgel the LIN
//! distribution is skewed left (toward cheaper misses); for mcf almost all
//! isolated misses disappear; for some benchmarks misses go *up* while
//! IPC also goes up (twolf, ammp) — the whole point of optimizing stalls
//! rather than miss counts.
//!
//! The report itself lives in [`mlpsim_experiments::figures::fig5_report`]
//! so that the `mlpsim-serve` job executor produces byte-identical output
//! for the same spec — this binary is a thin shell around that one shared
//! run path.

use mlpsim_experiments::figures::fig5_report;
use mlpsim_experiments::runner::RunOptions;

fn main() {
    print!("{}", fig5_report(&RunOptions::from_env()));
}
