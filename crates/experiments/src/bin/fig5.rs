//! Figure 5: the `mlp-cost` distribution under the baseline LRU and under
//! LIN(λ=4), with the inset ΔMISS / ΔIPC numbers.
//!
//! The paper's shape: for every benchmark except art and galgel the LIN
//! distribution is skewed left (toward cheaper misses); for mcf almost all
//! isolated misses disappear; for some benchmarks misses go *up* while
//! IPC also goes up (twolf, ammp) — the whole point of optimizing stalls
//! rather than miss counts.
//!
//! The report itself lives in [`mlpsim_experiments::figures::fig5_report`]
//! so that the `mlpsim-serve` job executor produces byte-identical output
//! for the same spec — this binary is a thin shell around that one shared
//! run path.

//! `--plan estimate [--prune-margin F]` swaps the full sweep for the
//! estimate→prune→simulate planner over the same grid; survivors still
//! run through the unchanged cell path, so their lines are byte-identical
//! to an unpruned run.

use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::figures::{fig5_report, planned_sweep_report};
use mlpsim_experiments::runner::{plan_from_env, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    let opts = RunOptions::from_env();
    match plan_from_env() {
        Some(plan) => print!(
            "{}",
            planned_sweep_report(
                &SpecBench::ALL,
                &[PolicyKind::Lru, PolicyKind::lin4()],
                &opts,
                &plan,
            )
        ),
        None => print!("{}", fig5_report(&opts)),
    }
}
