//! Figure 5: the `mlp-cost` distribution under the baseline LRU and under
//! LIN(λ=4), with the inset ΔMISS / ΔIPC numbers.
//!
//! The paper's shape: for every benchmark except art and galgel the LIN
//! distribution is skewed left (toward cheaper misses); for mcf almost all
//! isolated misses disappear; for some benchmarks misses go *up* while
//! IPC also goes up (twolf, ammp) — the whole point of optimizing stalls
//! rather than miss counts.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Figure 5 — mlp-cost distribution: LRU vs LIN(4), with inset deltas\n");
    let mut t = Table::with_headers(&[
        "bench", "policy", "0", "60", "120", "180", "240", "300", "360", "420+", "mean", "dMISS%",
        "(paper)", "dIPC%", "(paper)",
    ]);
    let matrix = run_matrix(
        &SpecBench::ALL,
        &[PolicyKind::Lru, PolicyKind::lin4()],
        &RunOptions::from_env(),
    );
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin) = (results[0].clone(), results[1].clone());
        let p = paper_row(bench);
        let miss_delta = percent_improvement(lin.l2.misses as f64, lru.l2.misses as f64);
        let ipc_delta = percent_improvement(lin.ipc(), lru.ipc());
        for (label, r, insets) in [
            ("lru", &lru, None),
            ("lin", &lin, Some((miss_delta, ipc_delta))),
        ] {
            let mut row = vec![bench.name().to_string(), label.to_string()];
            row.extend(r.cost_hist.percents().iter().map(|x| format!("{x:.1}")));
            row.push(format!("{:.0}", r.cost_hist.mean()));
            match insets {
                Some((dm, di)) => {
                    row.push(format!("{dm:+.1}"));
                    row.push(format!("{:+.1}", p.lin_miss_pct));
                    row.push(format!("{di:+.1}"));
                    row.push(format!("{:+.1}", p.lin_ipc_pct));
                }
                None => row.extend(["".into(), "".into(), "".into(), "".into()]),
            }
            t.row(row);
        }
    }
    println!("{}", t.render());
}
