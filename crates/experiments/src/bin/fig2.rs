//! Figure 2: distribution of `mlp-cost` under the baseline LRU policy.
//!
//! One row per benchmark: the percentage of misses in each 60-cycle bucket
//! (leftmost < 60 cycles, rightmost ≥ 420 cycles) and the mean cost (the
//! "dot on the horizontal axis" of the paper's figure).

use mlpsim_analysis::table::Table;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Figure 2 — mlp-cost distribution per benchmark (baseline LRU)");
    println!("bins are 60-cycle intervals; an isolated miss costs 444 cycles\n");
    let mut t = Table::with_headers(&[
        "bench", "0", "60", "120", "180", "240", "300", "360", "420+", "mean",
    ]);
    let matrix = run_matrix(&SpecBench::ALL, &[PolicyKind::Lru], &RunOptions::from_env());
    for (bench, row) in SpecBench::ALL.into_iter().zip(&matrix) {
        let r = &row[0];
        let p = r.cost_hist.percents();
        let mut row = vec![bench.name().to_string()];
        row.extend(p.iter().map(|x| format!("{x:.1}")));
        row.push(format!("{:.0}", r.cost_hist.mean()));
        t.row(row);
    }
    println!("{}", t.render());
    println!("Qualitative targets from the paper: art parallel-dominated (>85% below 120);");
    println!("mcf peaked at pair-parallelism with ~9% isolated; twolf/vpr/parser isolated-heavy;");
    println!("facerec bimodal; every mean well below the 444-cycle isolated cost.");
}
