//! Figure 6: the Contest-Based-Selection PSEL update rule, demonstrated
//! on a scripted access sequence.
//!
//! The rule: a divergence where ATD-LIN misses but ATD-LRU hits decrements
//! PSEL by the cost_q of ATD-LIN's miss; the opposite divergence
//! increments it by the cost_q of ATD-LRU's miss; agreement leaves PSEL
//! unchanged. Updates use saturating arithmetic and the MSB selects LIN.

use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::policy::ReplacementEngine;
use mlpsim_core::cbs::{CbsConfig, CbsEngine};

fn main() {
    println!("Figure 6 — Contest Based Selection for a single set (mechanism demo)\n");
    let g = Geometry::from_sets(4, 2, 64);
    let mut cbs = CbsEngine::new(g, CbsConfig::global());
    let show = |cbs: &CbsEngine, what: &str| {
        let p = cbs.psel_for(0);
        println!(
            "{:52} PSEL = {:3} (MSB {})",
            what,
            p.value(),
            if p.msb_set() { "1 -> LIN" } else { "0 -> LRU" }
        );
    };
    show(&cbs, "initial state");

    // Build divergent shadow state in set 0 (lines = 0, 4, 8 mod 4):
    // a high-cost block that LIN pins and LRU ages out.
    cbs.on_access(LineAddr(0), 0, false, None);
    cbs.on_serviced(LineAddr(0), 7);
    show(&cbs, "miss line 0 everywhere (cost_q 7): agreement");
    cbs.on_access(LineAddr(4), 1, false, None);
    cbs.on_serviced(LineAddr(4), 0);
    cbs.on_access(LineAddr(8), 2, false, None);
    cbs.on_serviced(LineAddr(8), 0);
    show(&cbs, "stream lines 4, 8 (cost_q 0): agreement");

    // ATD-LIN pinned line 0 and evicted the recent line 4; ATD-LRU kept
    // the recent {4, 8}. Accessing 4 diverges in LRU's favor: the miss
    // ATD-LIN incurs is serviced by memory, so the update waits for its
    // real cost (footnote 6).
    cbs.on_access(LineAddr(4), 3, false, None);
    show(&cbs, "line 4: LIN miss, LRU hit (pending until serviced)");
    cbs.on_serviced(LineAddr(4), 3);
    show(&cbs, "line 4 serviced with cost_q 3 -> PSEL -= 3");

    // Now the pinned block pays off: LIN still holds line 0, LRU evicted
    // it long ago. The MTD hit means no memory service happens; the
    // cost_q comes from the MTD tag entry.
    cbs.on_access(LineAddr(0), 4, true, Some(7));
    show(&cbs, "line 0 again: LIN hit, LRU miss -> PSEL += 7");

    println!("\nPSEL is moved by cost_q, not by 1: selection tracks cumulative MLP-based");
    println!("cost (a stall-cycle proxy) rather than raw miss counts (paper section 6.1).");
}
