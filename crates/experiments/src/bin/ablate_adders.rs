//! Footnote-3 ablation: one adder per MSHR entry vs four time-shared
//! adders in the cost-calculation logic.
//!
//! The paper: "time sharing four adders among the 32 entries has only a
//! negligible effect on the absolute value of the MLP-based cost". We run
//! the two highest-MLP benchmarks under both CCL configurations and
//! compare the measured cost distribution and the LIN IPC gain.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_core::ccl::AdderMode;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

const BENCHES: [SpecBench; 3] = [SpecBench::Art, SpecBench::Mcf, SpecBench::Sixtrack];

fn main() {
    println!("Footnote-3 ablation — per-entry adders vs 4 time-shared adders\n");
    let mut t = Table::with_headers(&["bench", "adders", "meanCost", "iso%", "LINipc%"]);
    let policies = [PolicyKind::Lru, PolicyKind::lin4()];
    let modes = [
        ("per-entry", AdderMode::PerEntry),
        ("4-shared", AdderMode::paper_shared()),
    ];
    let matrices: Vec<_> = modes
        .iter()
        .map(|&(_, adders)| {
            let opts = RunOptions {
                adders,
                ..RunOptions::from_env()
            };
            run_matrix(&BENCHES, &policies, &opts)
        })
        .collect();
    for (bi, bench) in BENCHES.into_iter().enumerate() {
        for (&(label, _), matrix) in modes.iter().zip(&matrices) {
            let lru = &matrix[bi][0];
            let lin = &matrix[bi][1];
            t.row(vec![
                bench.name().into(),
                label.into(),
                format!("{:.1}", lru.cost_hist.mean()),
                format!("{:.1}", lru.cost_hist.percent(7)),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Expected: mean cost differs by well under one quantization bucket (60 cycles)");
    println!("and the LIN improvement is unchanged — the paper's \"negligible effect\".");
}
