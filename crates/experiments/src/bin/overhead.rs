//! §6.4 / §1.2: the hardware storage budget.
//!
//! The paper prices SBAR at 1854 B — "less than 0.2% area of the baseline
//! 1MB cache". This binary prints the itemized budget for LIN's cost
//! tracking, SBAR's adaptation, and the CBS variants SBAR replaces.

use mlpsim_analysis::table::Table;
use mlpsim_core::overhead::{cbs_overhead, lin_overhead, sbar_overhead, OverheadParams};

fn main() {
    let p = OverheadParams::paper_baseline();
    println!(
        "Hardware overhead model (40-bit physical addresses, {} tag bits)\n",
        p.tag_bits()
    );
    let mut t = Table::with_headers(&[
        "mechanism",
        "ATD bits",
        "PSEL bits",
        "cost_q bits",
        "MSHR bits",
        "total B",
        "% of 1MB",
    ]);
    let rows = [
        ("LIN cost tracking", lin_overhead(&p)),
        ("SBAR adaptation", sbar_overhead(&p)),
        ("CBS-global", cbs_overhead(&p, false)),
        ("CBS-local", cbs_overhead(&p, true)),
    ];
    for (name, o) in rows {
        t.row(vec![
            name.into(),
            format!("{}", o.atd_bits),
            format!("{}", o.psel_bits),
            format!("{}", o.cost_q_bits),
            format!("{}", o.mshr_bits),
            format!("{}", o.total_bytes()),
            format!("{:.3}", o.fraction_of(p.geometry) * 100.0),
        ]);
    }
    println!("{}", t.render());
    let sbar = sbar_overhead(&p);
    println!(
        "SBAR: {} B vs the paper's 1854 B (the difference is the paper's unstated tag\n\
         width); {}x fewer ATD bits than CBS.",
        sbar.total_bytes(),
        cbs_overhead(&p, true).atd_bits / sbar.atd_bits
    );
    // Leader-count sweep.
    println!("\nSBAR budget vs leader-set count:");
    for k in [8u32, 16, 32, 64] {
        let mut pk = p;
        pk.leader_sets = k;
        println!("  k = {:2} -> {:5} B", k, sbar_overhead(&pk).total_bytes());
    }
}
