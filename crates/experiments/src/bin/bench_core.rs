//! Benchmarks the core cycle loop on one fixed workload and writes the
//! schema-stable `BENCH_core.json` throughput baseline.
//!
//! The workload is pinned (mcf under LIN(4), fixed seed) so the headline
//! accesses/sec number is diffable PR-over-PR: ROADMAP item 1 asks for an
//! order-of-magnitude core-loop speedup, and this file is the trajectory
//! it is judged against. Timing uses the interleaved-minimum estimator
//! from `policy_overheads.rs` — warm-up pass, then round-robin over the
//! timed variants, minimum per variant — so thermal drift hits all
//! variants equally and scheduler noise is discarded.
//!
//! Built with `--features prof`, the run additionally reports the
//! `telemetry::prof` per-phase breakdown (exclusive/inclusive nanoseconds
//! per hot-loop phase) and holds both profiler costs to absolute
//! per-scope ceilings: the *closed* gate must stay one relaxed atomic
//! load, the *open* gate two clock reads plus a thread-local batch
//! update. Both per-scope costs come from the differential microbench
//! (scope spin loop minus empty baseline), and `prof_overhead_pct` is
//! that open-gate per-scope cost scaled by the run's scope count —
//! comparing two full-run walls inline bounces with cache/allocator
//! state and has reported overheads >150% for a ~100 ns probe. Without
//! the feature the binary still runs and writes the same schema with
//! `prof_enabled: false` and an empty phase table.
//!
//! `--validate <path>` checks an existing `BENCH_core.json` against the
//! schema instead of benchmarking (CI runs this after the bench); adding
//! `--min-aps <N>` also fails the validation if the recorded
//! `accesses_per_sec` falls below `N` — CI's regression floor against
//! the committed baseline.

use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::cli;
use mlpsim_experiments::runner::{
    accesses_from_args, run_trace, sinks_from_env, RunOptions, DEFAULT_SEED,
};
use mlpsim_telemetry::prof::{self, Phase, PhaseReport};
use mlpsim_telemetry::{Event, Json};
use mlpsim_trace::spec::SpecBench;
use std::hint::black_box;
use std::io::Write;
use std::process::ExitCode;

const WORKLOAD: SpecBench = SpecBench::Mcf;
const DEFAULT_BENCH_ACCESSES: usize = 120_000;
const ROUNDS: usize = 5;
const OUT_DEFAULT: &str = "BENCH_core.json";
/// A disabled profiler gate is one relaxed atomic load per scope;
/// measured ~1–2 ns on commodity hardware.
const CLOSED_GATE_NS_PER_SCOPE_MAX: f64 = 5.0;
/// An enabled scope is two monotonic clock reads plus a thread-local
/// batch update; measured ~80 ns. A regression to shared-atomic
/// accounting or an allocation on the scope path blows well past this.
const OPEN_GATE_NS_PER_SCOPE_MAX: f64 = 250.0;

fn timed(f: &mut dyn FnMut()) -> u64 {
    let t0 = prof::now_ns();
    f();
    prof::now_ns().saturating_sub(t0)
}

/// Warm-up pass, then `rounds` round-robin passes over `runs`; returns
/// the minimum wall nanoseconds per variant.
fn interleaved_min_ns(runs: &mut [&mut dyn FnMut()], rounds: usize) -> Vec<u64> {
    for r in runs.iter_mut() {
        r();
    }
    let mut mins = vec![u64::MAX; runs.len()];
    for _ in 0..rounds {
        for (i, r) in runs.iter_mut().enumerate() {
            mins[i] = mins[i].min(timed(*r));
        }
    }
    mins
}

fn out_path(args: &[String]) -> Result<String, String> {
    let mut path = OUT_DEFAULT.to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            match it.next() {
                Some(p) if !p.starts_with("--") => path = p.clone(),
                _ => return Err("--out requires a path argument".into()),
            }
        } else if let Some(p) = a.strip_prefix("--out=") {
            if p.is_empty() {
                return Err("--out= requires a non-empty path".into());
            }
            path = p.to_string();
        }
    }
    Ok(path)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(i + 1) else {
            return cli::usage_error("--validate requires a path");
        };
        let min_aps = match args.iter().position(|a| a == "--min-aps") {
            Some(j) => match args.get(j + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(n) if n > 0.0 => Some(n),
                _ => return cli::usage_error("--min-aps requires a positive number"),
            },
            None => None,
        };
        return validate(path, min_aps);
    }

    let accesses = if args
        .iter()
        .any(|a| a == "--accesses" || a.starts_with("--accesses="))
    {
        match accesses_from_args(&args) {
            Ok(n) => n,
            Err(e) => return cli::usage_error(&e),
        }
    } else {
        DEFAULT_BENCH_ACCESSES
    };
    let out = match out_path(&args) {
        Ok(p) => p,
        Err(e) => return cli::usage_error(&e),
    };

    let policy = PolicyKind::lin4();
    let workload = format!("{}/{}", WORKLOAD.name(), policy.label());
    println!("bench_core — {workload}, {accesses} accesses, {ROUNDS} rounds");

    let trace = WORKLOAD.generate(accesses, DEFAULT_SEED);
    let opts = RunOptions {
        accesses,
        jobs: 1,
        ..RunOptions::default()
    };
    let run_once = || {
        black_box(run_trace(&trace, policy, &opts));
    };

    // Interleaved throughput measurement: profiler gate closed vs. open.
    // Without the `prof` feature both variants are scope-free and the
    // measured overhead is honest noise around zero.
    prof::disable();
    prof::reset();
    let mut run_off = || run_once();
    let mut run_on = || {
        prof::enable();
        run_once();
        prof::disable();
    };
    let mins = interleaved_min_ns(&mut [&mut run_off, &mut run_on], ROUNDS);
    let (wall_ns, prof_wall_ns) = (mins[0], mins[1]);
    let accesses_per_sec = accesses as f64 / (wall_ns as f64 / 1e9);
    println!("throughput: {accesses_per_sec:.0} accesses/sec (min wall {wall_ns} ns)");

    // Canonical phase table: one clean profiled run, so the exclusive
    // times reconcile against a single run's wall time.
    prof::reset();
    prof::enable();
    let mut canonical = || run_once();
    let profiled_wall_ns = timed(&mut canonical);
    prof::disable();
    let phases: Vec<PhaseReport> = prof::report().into_iter().filter(|p| p.calls > 0).collect();
    for p in &phases {
        let excl_pct = if profiled_wall_ns > 0 {
            p.excl_ns as f64 / profiled_wall_ns as f64 * 100.0
        } else {
            0.0
        };
        println!(
            "  {:>14}: {:>10} calls  excl {:>6.2}%  incl {} ns",
            p.name, p.calls, excl_pct, p.incl_ns
        );
    }
    let excl_total: u64 = phases.iter().map(|p| p.excl_ns).sum();
    assert!(
        excl_total <= profiled_wall_ns,
        "phase exclusive times ({excl_total} ns) exceed the run's wall time \
         ({profiled_wall_ns} ns) — the hierarchical accounting is broken"
    );

    // Closed-gate residue: the only cost the profiler may impose on a
    // build that carries it but has not enabled it is one relaxed atomic
    // load per scope. Measure that load directly, scale it by the scope
    // count of a real run, and hold it to the same ≤2% envelope the
    // telemetry probes live under.
    let floor_iters: u64 = 4_000_000;
    let mut spin = || {
        for _ in 0..floor_iters {
            black_box(&prof::scope(Phase::Tagstore));
        }
    };
    let mut baseline = || {
        for i in 0..floor_iters {
            black_box(&i);
        }
    };
    let spin_mins = interleaved_min_ns(&mut [&mut spin, &mut baseline], 3);
    let ns_per_scope = spin_mins[0].saturating_sub(spin_mins[1]) as f64 / floor_iters as f64;
    let scopes_per_run: u64 = phases.iter().map(|p| p.calls).sum();
    let off_floor_pct = ns_per_scope * scopes_per_run as f64 / wall_ns as f64 * 100.0;

    // Open-gate cost, measured the same differential way: the spin loop
    // with the gate enabled minus the empty baseline. This is the number
    // the reported overhead percentage is built from — two full-run walls
    // compared inline bounce with allocator/cache state and have produced
    // overhead figures north of 150% for a probe that costs ~100 ns; the
    // microbench difference is stable to a few ns.
    prof::enable();
    let mut spin_open = || {
        for _ in 0..floor_iters {
            black_box(&prof::scope(Phase::Tagstore));
        }
    };
    let mut baseline_open = || {
        for i in 0..floor_iters {
            black_box(&i);
        }
    };
    let open_mins = interleaved_min_ns(&mut [&mut spin_open, &mut baseline_open], 3);
    prof::disable();
    prof::reset();
    let open_ns_per_scope =
        open_mins[0].saturating_sub(open_mins[1]) as f64 / floor_iters as f64;
    // Gate-open overhead of a real run: the microbenched per-scope cost
    // scaled by the run's actual scope count, as a fraction of its wall.
    let prof_overhead_pct = open_ns_per_scope * scopes_per_run as f64 / wall_ns as f64 * 100.0;
    println!("profiler gate open: +{prof_overhead_pct:.2}% of a run");

    // The ceilings are absolute per-scope costs, not fractions of the
    // run: the scope count per run is fixed by the workload, so engine
    // speedups shrink the wall and would inflate any percentage envelope
    // without the profiler getting one bit slower.
    assert!(
        ns_per_scope <= CLOSED_GATE_NS_PER_SCOPE_MAX,
        "closed-gate profiler residue {ns_per_scope:.1} ns/scope exceeds the \
         {CLOSED_GATE_NS_PER_SCOPE_MAX} ns ceiling — the disabled gate must \
         stay one relaxed atomic load"
    );
    if scopes_per_run > 0 {
        assert!(
            open_ns_per_scope <= OPEN_GATE_NS_PER_SCOPE_MAX,
            "open-gate profiler cost {open_ns_per_scope:.0} ns/scope exceeds the \
             {OPEN_GATE_NS_PER_SCOPE_MAX} ns ceiling — a scope should be two \
             clock reads and a thread-local batch update"
        );
        println!(
            "profiler gate closed: {ns_per_scope:.1} ns/scope ({off_floor_pct:.2}% of a run); \
             gate open: {open_ns_per_scope:.0} ns/scope — within the ceilings"
        );
    }

    // Optional: feed the phase table into a telemetry stream so
    // `telemetry-report` can render it.
    let sink = sinks_from_env();
    if sink.enabled() {
        for p in &phases {
            sink.emit(Event::PerfPhase {
                name: p.name.to_string(),
                calls: p.calls,
                incl_ns: p.incl_ns,
                excl_ns: p.excl_ns,
            });
        }
        sink.flush();
    }

    let mut phases_json = String::new();
    for (i, p) in phases.iter().enumerate() {
        let excl_pct = if profiled_wall_ns > 0 {
            p.excl_ns as f64 / profiled_wall_ns as f64 * 100.0
        } else {
            0.0
        };
        if i > 0 {
            phases_json.push_str(",\n");
        }
        phases_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"calls\": {}, \"incl_ns\": {}, \"excl_ns\": {}, \
             \"excl_pct\": {excl_pct:.2}}}",
            p.name, p.calls, p.incl_ns, p.excl_ns
        ));
    }
    let phases_block = if phases_json.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{phases_json}\n  ]")
    };
    let json = format!(
        "{{\n  \"schema\": \"bench_core/v1\",\n  \"workload\": \"{workload}\",\n  \
         \"accesses\": {accesses},\n  \"rounds\": {ROUNDS},\n  \"wall_ns\": {wall_ns},\n  \
         \"accesses_per_sec\": {accesses_per_sec:.1},\n  \
         \"prof_enabled\": {},\n  \"prof_wall_ns\": {prof_wall_ns},\n  \
         \"prof_overhead_pct\": {prof_overhead_pct:.2},\n  \
         \"prof_off_floor_pct\": {off_floor_pct:.3},\n  \"phases\": {phases_block}\n}}\n",
        cfg!(feature = "prof"),
    );
    let write = std::fs::File::create(&out).and_then(|mut f| f.write_all(json.as_bytes()));
    if let Err(e) = write {
        return cli::io_error(&format!("cannot write {out}: {e}"));
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// Schema check for an existing `BENCH_core.json`; exits non-zero with a
/// message naming the first violated requirement. With `min_aps`, also
/// enforces a throughput floor against the recorded `accesses_per_sec`.
fn validate(path: &str, min_aps: Option<f64>) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return cli::io_error(&format!("cannot read {path}: {e}")),
    };
    let v = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => return cli::io_error(&format!("{path}: not JSON: {e}")),
    };
    match check_schema(&v) {
        Ok(summary) => {
            if let Some(floor) = min_aps {
                let aps = v
                    .get("accesses_per_sec")
                    .and_then(|a| a.as_f64())
                    .expect("schema check verified the field");
                if aps < floor {
                    eprintln!(
                        "{path}: throughput regression: {aps:.0} accesses/sec is below \
                         the {floor:.0} floor"
                    );
                    return ExitCode::FAILURE;
                }
                println!("{path}: {summary}; above the {floor:.0} accesses/sec floor");
            } else {
                println!("{path}: {summary}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn check_schema(v: &Json) -> Result<String, String> {
    let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field {k:?}"));
    let schema = field("schema")?.as_str().ok_or("schema must be a string")?;
    if schema != "bench_core/v1" {
        return Err(format!(
            "unknown schema {schema:?}, expected \"bench_core/v1\""
        ));
    }
    field("workload")?
        .as_str()
        .ok_or("workload must be a string")?;
    let accesses = field("accesses")?
        .as_u64()
        .ok_or("accesses must be a u64")?;
    let wall_ns = field("wall_ns")?.as_u64().ok_or("wall_ns must be a u64")?;
    let aps = field("accesses_per_sec")?
        .as_f64()
        .ok_or("accesses_per_sec must be a number")?;
    if accesses == 0 || wall_ns == 0 || aps <= 0.0 {
        return Err("accesses, wall_ns, and accesses_per_sec must be positive".into());
    }
    let prof_enabled = field("prof_enabled")?
        .as_bool()
        .ok_or("prof_enabled must be a bool")?;
    field("prof_wall_ns")?
        .as_u64()
        .ok_or("prof_wall_ns must be a u64")?;
    let overhead = field("prof_overhead_pct")?
        .as_f64()
        .ok_or("prof_overhead_pct must be a number")?;
    if !(0.0..=10_000.0).contains(&overhead) {
        return Err(format!(
            "prof_overhead_pct {overhead} is outside [0, 10000] — the gate-open \
             microbench cannot report a negative cost, and anything past 100x \
             means the inline wall comparison leaked back in"
        ));
    }
    field("prof_off_floor_pct")?
        .as_f64()
        .ok_or("prof_off_floor_pct must be a number")?;
    let Json::Arr(phases) = field("phases")? else {
        return Err("phases must be an array".into());
    };
    let known: Vec<&str> = Phase::all().iter().map(|p| p.name()).collect();
    let mut excl_pct_total = 0.0;
    for (i, p) in phases.iter().enumerate() {
        let pf = |k: &str| p.get(k).ok_or_else(|| format!("phases[{i}] missing {k:?}"));
        let name = pf("name")?.as_str().ok_or("phase name must be a string")?;
        if !known.contains(&name) {
            return Err(format!("phases[{i}] has unknown name {name:?}"));
        }
        let calls = pf("calls")?.as_u64().ok_or("phase calls must be a u64")?;
        let incl = pf("incl_ns")?
            .as_u64()
            .ok_or("phase incl_ns must be a u64")?;
        let excl = pf("excl_ns")?
            .as_u64()
            .ok_or("phase excl_ns must be a u64")?;
        let pct = pf("excl_pct")?
            .as_f64()
            .ok_or("phase excl_pct must be a number")?;
        if calls == 0 {
            return Err(format!("phases[{i}] ({name}) has zero calls"));
        }
        if excl > incl {
            return Err(format!("phases[{i}] ({name}) has excl_ns > incl_ns"));
        }
        excl_pct_total += pct;
    }
    if prof_enabled {
        if phases.len() < 4 {
            return Err(format!(
                "prof build must report >=4 phases, got {}",
                phases.len()
            ));
        }
        if excl_pct_total > 100.5 {
            return Err(format!(
                "phase exclusive percentages sum to {excl_pct_total:.2}% > 100%"
            ));
        }
    }
    Ok(format!(
        "schema ok ({} phases, {aps:.0} accesses/sec)",
        phases.len()
    ))
}
