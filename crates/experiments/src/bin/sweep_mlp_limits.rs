//! Extension experiment: the structures that *create* MLP — the
//! instruction window and the MSHR file — swept around the baseline.
//!
//! §2 of the paper surveys window-scaling proposals precisely because "the
//! effectiveness of an out-of-order engine's ability to increase MLP is
//! limited by the instruction window size". This sweep shows both limits
//! acting on the measured cost distribution and on LIN's leverage: a tiny
//! window serializes everything (all misses become isolated, so there is
//! no cost differential to exploit); a huge window parallelizes
//! everything (same outcome from the other side).

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

const BENCHES: [SpecBench; 2] = [SpecBench::Mcf, SpecBench::Art];
const LIMITS: [(usize, usize); 4] = [(32, 32), (128, 8), (128, 32), (512, 32)];

fn main() {
    println!("MLP-limit sweep — window size and MSHR entries vs cost profile and LIN gain\n");
    let mut t = Table::with_headers(&[
        "bench", "window", "mshr", "meanCost", "iso%", "peakMLP", "LINipc%",
    ]);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        BENCHES
            .map(|b| move || Arc::new(b.generate(200_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for (window, mshr) in LIMITS {
            for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    cfg.cpu.window = window;
                    cfg.mem.mshr_entries = mshr;
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in BENCHES {
        for (window, mshr) in LIMITS {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            t.row(vec![
                bench.name().into(),
                format!("{window}"),
                format!("{mshr}"),
                format!("{:.0}", lru.cost_hist.mean()),
                format!("{:.1}", lru.cost_hist.percent(7)),
                format!("{}", lru.peak_mlp),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("At a 512-entry window even the \"isolated\" accesses (192-instruction gaps)");
    println!("overlap: the mean cost collapses, the isolated fraction hits zero, and LIN's");
    println!("leverage evaporates — cost differentials are what MLP-aware replacement eats.");
    println!("Around the 128-entry baseline the differential (and LIN's gain) is widest;");
    println!("the MSHR only binds once the window can expose more misses than it holds.");
}
