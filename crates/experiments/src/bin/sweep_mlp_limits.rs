//! Extension experiment: the structures that *create* MLP — the
//! instruction window and the MSHR file — swept around the baseline.
//!
//! §2 of the paper surveys window-scaling proposals precisely because "the
//! effectiveness of an out-of-order engine's ability to increase MLP is
//! limited by the instruction window size". This sweep shows both limits
//! acting on the measured cost distribution and on LIN's leverage: a tiny
//! window serializes everything (all misses become isolated, so there is
//! no cost differential to exploit); a huge window parallelizes
//! everything (same outcome from the other side).

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("MLP-limit sweep — window size and MSHR entries vs cost profile and LIN gain\n");
    let mut t = Table::with_headers(&[
        "bench", "window", "mshr", "meanCost", "iso%", "peakMLP", "LINipc%",
    ]);
    for bench in [SpecBench::Mcf, SpecBench::Art] {
        let trace = bench.generate(200_000, 42);
        for (window, mshr) in [(32usize, 32usize), (128, 8), (128, 32), (512, 32)] {
            let run = |policy| {
                let mut cfg = SystemConfig::baseline(policy);
                cfg.cpu.window = window;
                cfg.mem.mshr_entries = mshr;
                System::new(cfg).run(trace.iter())
            };
            let lru = run(PolicyKind::Lru);
            let lin = run(PolicyKind::lin4());
            t.row(vec![
                bench.name().into(),
                format!("{window}"),
                format!("{mshr}"),
                format!("{:.0}", lru.cost_hist.mean()),
                format!("{:.1}", lru.cost_hist.percent(7)),
                format!("{}", lru.peak_mlp),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("At a 512-entry window even the \"isolated\" accesses (192-instruction gaps)");
    println!("overlap: the mean cost collapses, the isolated fraction hits zero, and LIN's");
    println!("leverage evaporates — cost differentials are what MLP-aware replacement eats.");
    println!("Around the 128-entry baseline the differential (and LIN's gain) is widest;");
    println!("the MSHR only binds once the window can expose more misses than it holds.");
}
