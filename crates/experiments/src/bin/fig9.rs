//! Figure 9: IPC improvement over LRU for pure LIN vs SBAR.
//!
//! The paper's shape: SBAR maintains LIN's gains where LIN wins and
//! eliminates the degradation on bzip2, parser and mgrid (leaving only the
//! marginal loss of the always-LIN leader sets); on ammp and galgel SBAR
//! beats both pure policies by tracking program phases.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::figures::planned_sweep_report;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{plan_from_env, run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    // `--telemetry <path.ndjson>` streams every run's events to one file;
    // fold it into tables afterwards with `telemetry-report <path>`.
    let opts = RunOptions::from_env();
    let policies = [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ];
    if let Some(plan) = plan_from_env() {
        print!(
            "{}",
            planned_sweep_report(&SpecBench::ALL, &policies, &opts, &plan)
        );
        return;
    }
    println!("Figure 9 — IPC improvement (%) over LRU: LIN vs SBAR\n");
    let mut t = Table::with_headers(&["bench", "LIN", "(paper)", "SBAR", "(paper)"]);
    let matrix = run_matrix(&SpecBench::ALL, &policies, &opts);
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin, sbar) = (&results[0], &results[1], &results[2]);
        let p = paper_row(bench);
        t.row(vec![
            bench.name().into(),
            format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            format!("{:+.1}", p.lin_ipc_pct),
            format!("{:+.1}", percent_improvement(sbar.ipc(), lru.ipc())),
            format!("{:+.1}", p.sbar_ipc_pct),
        ]);
    }
    println!("{}", t.render());
}
