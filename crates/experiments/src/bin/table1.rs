//! Table 1: predictability of `mlp-cost` — the distribution of *delta*
//! (the absolute cost difference between successive misses to the same
//! block) under the baseline LRU policy.

use mlpsim_analysis::table::Table;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Table 1 — delta distribution (successive-miss cost difference)\n");
    let mut t = Table::with_headers(&[
        "bench",
        "delta<60%",
        "(paper)",
        "60<=d<120%",
        "d>=120%",
        "avg",
        "(paper)",
    ]);
    let matrix = run_matrix(&SpecBench::ALL, &[PolicyKind::Lru], &RunOptions::from_env());
    for (bench, row) in SpecBench::ALL.into_iter().zip(&matrix) {
        let r = &row[0];
        let p = paper_row(bench);
        t.row(vec![
            bench.name().into(),
            format!("{:.0}", r.deltas.pct_lt60()),
            format!("{:.0}", p.delta_lt60_pct),
            format!("{:.0}", r.deltas.pct_lt120()),
            format!("{:.0}", r.deltas.pct_ge120()),
            format!("{:.0}", r.deltas.average()),
            format!("{:.0}", p.delta_avg),
        ]);
    }
    println!("{}", t.render());
    println!("Paper's conclusion: for all benchmarks except bzip2, parser and mgrid, the");
    println!("majority of deltas are below 60 cycles, so last-time cost predicts next-time cost.");
}
