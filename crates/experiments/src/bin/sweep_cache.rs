//! Extension experiment: sensitivity of MLP-aware replacement to the L2
//! capacity.
//!
//! The paper evaluates a single 1 MB configuration; this sweep halves and
//! doubles it. The expected physics: at 512 KB the protectable structures
//! no longer fit, so LIN's wins shrink (and its losses deepen — the same
//! pins squeeze a smaller cache); at 2 MB most working sets fit outright
//! and every policy converges (replacement stops mattering).

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

fn main() {
    println!("Cache-capacity sweep — LIN / SBAR IPC improvement (%) over same-size LRU\n");
    let benches = [
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Parser,
        SpecBench::Art,
    ];
    let sizes = [(512u64 << 10, "512K"), (1 << 20, "1M"), (2 << 20, "2M")];
    let mut headers = vec!["bench".to_string()];
    for (_, label) in sizes {
        headers.push(format!("LIN@{label}"));
        headers.push(format!("SBAR@{label}"));
    }
    let mut t = Table::new(headers);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        benches
            .map(|b| move || Arc::new(b.generate(420_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for (bytes, _) in sizes {
            for policy in [
                PolicyKind::Lru,
                PolicyKind::lin4(),
                PolicyKind::sbar_default(),
            ] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let geom = Geometry::new(bytes, 16, 64).expect("valid L2 geometry");
                    let mut cfg = SystemConfig::baseline(policy);
                    cfg.l2 = geom;
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in benches {
        let mut row = vec![bench.name().to_string()];
        for _ in sizes {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            let sbar = results.next().expect("sbar cell");
            row.push(format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())));
            row.push(format!(
                "{:+.1}",
                percent_improvement(sbar.ipc(), lru.ipc())
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("SBAR tracks or beats LIN at every capacity; its recovery toward LRU is");
    println!("strongest when LIN's losses come from isolated misses (parser@1M) and");
    println!("weaker when they come from many cheap parallel misses (mcf@512K), whose");
    println!("cost_q-weighted PSEL updates understate the true stall balance.");
}
