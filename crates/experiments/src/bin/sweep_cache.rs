//! Extension experiment: sensitivity of MLP-aware replacement to the L2
//! capacity.
//!
//! The paper evaluates a single 1 MB configuration; this sweep halves and
//! doubles it. The expected physics: at 512 KB the protectable structures
//! no longer fit, so LIN's wins shrink (and its losses deepen — the same
//! pins squeeze a smaller cache); at 2 MB most working sets fit outright
//! and every policy converges (replacement stops mattering).

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Cache-capacity sweep — LIN / SBAR IPC improvement (%) over same-size LRU\n");
    let benches = [
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Parser,
        SpecBench::Art,
    ];
    let sizes = [(512u64 << 10, "512K"), (1 << 20, "1M"), (2 << 20, "2M")];
    let mut headers = vec!["bench".to_string()];
    for (_, label) in sizes {
        headers.push(format!("LIN@{label}"));
        headers.push(format!("SBAR@{label}"));
    }
    let mut t = Table::new(headers);
    for bench in benches {
        let trace = bench.generate(420_000, 42);
        let mut row = vec![bench.name().to_string()];
        for (bytes, _) in sizes {
            let geom = Geometry::new(bytes, 16, 64).expect("valid L2 geometry");
            let run = |policy| {
                let mut cfg = SystemConfig::baseline(policy);
                cfg.l2 = geom;
                System::new(cfg).run(trace.iter())
            };
            let lru = run(PolicyKind::Lru);
            let lin = run(PolicyKind::lin4());
            let sbar = run(PolicyKind::sbar_default());
            row.push(format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())));
            row.push(format!(
                "{:+.1}",
                percent_improvement(sbar.ipc(), lru.ipc())
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("SBAR tracks or beats LIN at every capacity; its recovery toward LRU is");
    println!("strongest when LIN's losses come from isolated misses (parser@1M) and");
    println!("weaker when they come from many cheap parallel misses (mcf@512K), whose");
    println!("cost_q-weighted PSEL updates understate the true stall balance.");
}
