//! Figure 8 (and Eqs. 3–5): the analytical leader-set sampling model —
//! probability that `k` sampled leader sets select the globally best
//! policy when a fraction `p` of all sets favor it.

use mlpsim_analysis::sampling::p_best;
use mlpsim_analysis::table::Table;

fn main() {
    println!("Figure 8 — P(Best) vs number of leader sets (Eqs. 3-5)\n");
    let ps = [0.5, 0.6, 0.7, 0.8, 0.9];
    let ks = [1u32, 2, 4, 8, 16, 24, 32, 48, 64];
    let mut t = Table::with_headers(&["k", "p=0.5", "p=0.6", "p=0.7", "p=0.8", "p=0.9"]);
    for &k in &ks {
        let mut row = vec![format!("{k}")];
        for &p in &ps {
            row.push(format!("{:.4}", p_best(k, p)));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Experimentally the paper finds p between 0.74 and 0.99; P(Best) at k=16, p=0.74 is {:.3}\n\
         and at k=32 it is {:.3} — hence \"a small number of leader sets (16-32) is sufficient\n\
         to select the globally best-performing policy with a high (> 95%) probability\".",
        p_best(16, 0.74),
        p_best(32, 0.74)
    );
}
