//! §6.3's empirical anchor: the fraction `p` of cache sets favoring the
//! globally best policy.
//!
//! The paper's analytical sampling model (Fig. 8) takes `p` as input and
//! notes "Experimentally, we found that the average value of p for all
//! benchmarks is between 0.74 and 0.99". We measure `p` the way hardware
//! would see it: run CBS-local (one PSEL per set) and census the per-set
//! counters at the end of the run, then feed the measured `p` back into
//! the Fig. 8 model to predict SBAR's selection accuracy at 32 leaders.

use mlpsim_analysis::sampling::p_best;
use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::cli;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;
use std::process::ExitCode;

/// Parses the CBS-local engine's `psel_lin=<lin>/<total>` census string.
fn parse_census(debug: Option<&str>) -> Result<(usize, usize), String> {
    let debug = debug.ok_or("CBS-local reported no census in policy_debug")?;
    let body = debug.trim_start_matches("psel_lin=");
    let (lin, total) = body
        .split_once('/')
        .ok_or_else(|| format!("malformed census {debug:?}: want psel_lin=<lin>/<total>"))?;
    match (lin.parse(), total.parse()) {
        (Ok(l), Ok(t)) => Ok((l, t)),
        _ => Err(format!("malformed census {debug:?}: non-numeric fields")),
    }
}

fn main() -> ExitCode {
    println!("Measured per-set policy preference p (via CBS-local PSEL census)\n");
    let mut t = Table::with_headers(&[
        "bench",
        "best",
        "lin-sets",
        "p",
        "P(Best) k=8",
        "k=16",
        "k=32",
    ]);
    let mut ps = Vec::new();
    let matrix = run_matrix(
        &SpecBench::ALL,
        &[PolicyKind::Lru, PolicyKind::lin4(), PolicyKind::CbsLocal],
        &RunOptions::from_env(),
    );
    for (bench, results) in SpecBench::ALL.into_iter().zip(matrix) {
        let (lru, lin) = (&results[0], &results[1]);
        let cbs = results[2].clone();
        // Parse "psel_lin=<lin>/<total>" from the engine's debug state.
        let (lin_sets, total) = match parse_census(cbs.policy_debug.as_deref()) {
            Ok(pair) => pair,
            Err(msg) => return cli::io_error(&format!("{}: {msg}", bench.name())),
        };
        let lin_frac = lin_sets as f64 / total as f64;
        let lin_wins = percent_improvement(lin.ipc(), lru.ipc()) >= 0.0;
        let p = if lin_wins { lin_frac } else { 1.0 - lin_frac };
        // p is by definition at least 0.5 in the two-policy model.
        let p = p.max(0.5);
        ps.push(p);
        t.row(vec![
            bench.name().into(),
            if lin_wins { "lin" } else { "lru" }.into(),
            format!("{lin_sets}/{total}"),
            format!("{p:.2}"),
            format!("{:.3}", p_best(8, p)),
            format!("{:.3}", p_best(16, p)),
            format!("{:.3}", p_best(32, p)),
        ]);
    }
    println!("{}", t.render());
    let (lo, hi) = ps
        .iter()
        .fold((1.0f64, 0.0f64), |(lo, hi), &p| (lo.min(p), hi.max(p)));
    println!(
        "Measured p ranges over [{lo:.2}, {hi:.2}] (paper: [0.74, 0.99]); plugging each\n\
         benchmark's p into Eqs. 4-5 gives the per-benchmark probability that SBAR's 32\n\
         sampled leader sets pick the right policy."
    );
    ExitCode::SUCCESS
}
