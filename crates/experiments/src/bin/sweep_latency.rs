//! Extension experiment: sensitivity to memory latency.
//!
//! The paper's motivation opens with the growing processor–memory gap;
//! this sweep scales the DRAM access latency around the baseline 400
//! cycles (keeping the 44-cycle bus) and shows that MLP-aware
//! replacement's leverage grows with the gap: the farther memory is, the
//! more an isolated miss costs relative to a parallel one.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

fn main() {
    println!("Memory-latency sweep — LIN / SBAR IPC improvement (%) over same-latency LRU\n");
    let benches = [SpecBench::Mcf, SpecBench::Vpr, SpecBench::Sixtrack];
    let latencies = [100u64, 200, 400, 800];
    let mut headers = vec!["bench".to_string()];
    for l in latencies {
        headers.push(format!("LIN@{l}"));
        headers.push(format!("SBAR@{l}"));
    }
    let mut t = Table::new(headers);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        benches
            .map(|b| move || Arc::new(b.generate(250_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for latency in latencies {
            for policy in [
                PolicyKind::Lru,
                PolicyKind::lin4(),
                PolicyKind::sbar_default(),
            ] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    cfg.mem.dram_access_cycles = latency;
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in benches {
        let mut row = vec![bench.name().to_string()];
        for _ in latencies {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            let sbar = results.next().expect("sbar cell");
            row.push(format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())));
            row.push(format!(
                "{:+.1}",
                percent_improvement(sbar.ipc(), lru.ipc())
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Latency is the DRAM access time in cycles (444-cycle baseline = 400 + 44 bus).");
    println!("Caveat: the quantizer's 60-cycle buckets are calibrated for ~444-cycle");
    println!("misses; at 100-cycle memory most misses collapse into the bottom buckets and");
    println!("the cost differential (and LIN's leverage) fades — the other face of the");
    println!("same effect that makes MLP-awareness increasingly valuable as memory recedes.");
}
