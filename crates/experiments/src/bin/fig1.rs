//! Figure 1: the motivating example.
//!
//! Runs the paper's P/S-block loop on a fully-associative cache with space
//! for four blocks under Belady's OPT, LRU, and the MLP-aware LIN policy,
//! and reports misses and long-latency stalls per loop iteration.
//!
//! Paper's claim: OPT = 4 misses / 4 stalls, LRU = 6 misses / 4 stalls
//! (footnote 2), MLP-aware = 6 misses / 2 stalls — i.e. even the
//! miss-optimal oracle incurs twice the stalls of a simple MLP-aware
//! policy.

use mlpsim_analysis::table::Table;
use mlpsim_cache::addr::{Geometry, LineAddr};
use mlpsim_cache::belady::BeladyEngine;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_experiments::paper;
use mlpsim_trace::figure1::{figure1_lines, figure1_trace};

const ITERATIONS: usize = 200;
const WARMUP: usize = 2;

fn main() {
    let trace = figure1_trace(ITERATIONS + WARMUP);
    let cache = Geometry::from_sets(1, 4, 64); // fully associative, 4 blocks

    let base_cfg = || {
        let mut cfg = SystemConfig::baseline(PolicyKind::Lru);
        cfg.l1 = None; // the example's cache is the only cache
        cfg.l2 = cache;
        cfg
    };

    let mut t =
        Table::with_headers(&["policy", "misses/iter", "(paper)", "stalls/iter", "(paper)"]);
    let runs: Vec<(&str, (u64, u64), _)> = vec![
        ("belady-opt", paper::figure1::OPT, {
            let lines: Vec<LineAddr> = figure1_lines(ITERATIONS + WARMUP)
                .into_iter()
                .map(LineAddr)
                .collect();
            System::with_l2_engine(base_cfg(), Box::new(BeladyEngine::from_accesses(lines)))
        }),
        ("lru", paper::figure1::LRU, System::new(base_cfg())),
        (
            "lin(4)",
            paper::figure1::MLP_AWARE,
            System::new({
                let mut cfg = base_cfg();
                cfg.policy = PolicyKind::lin4();
                cfg
            }),
        ),
    ];
    for (name, (paper_miss, paper_stall), system) in runs {
        let r = system.run(trace.iter());
        // Subtract one warm-up iteration's worth of compulsory traffic by
        // averaging over all iterations; with 200 iterations the warm-up
        // contributes < 4% and the per-iteration numbers round cleanly.
        let iters = (ITERATIONS + WARMUP) as f64;
        t.row(vec![
            name.into(),
            format!("{:.2}", r.l2.misses as f64 / iters),
            format!("{paper_miss}"),
            format!("{:.2}", r.stall_episodes as f64 / iters),
            format!("{paper_stall}"),
        ]);
    }
    println!("Figure 1 — OPT vs LRU vs MLP-aware on the motivating loop");
    println!(
        "({} iterations, 4-entry fully-associative cache)\n",
        ITERATIONS + WARMUP
    );
    println!("{}", t.render());
}
