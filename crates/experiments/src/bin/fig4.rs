//! Figure 4: IPC improvement over the LRU baseline for LIN(λ) as λ goes
//! from 1 to 4.
//!
//! The paper's shape: the effect grows with λ; with λ = 4 LIN clearly
//! helps art, mcf, vpr, ammp, galgel and sixtrack and clearly hurts
//! bzip2, parser and mgrid.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::figures::planned_sweep_report;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{plan_from_env, run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    if let Some(plan) = plan_from_env() {
        let policies = [
            PolicyKind::Lru,
            PolicyKind::Lin { lambda: 1 },
            PolicyKind::Lin { lambda: 2 },
            PolicyKind::Lin { lambda: 3 },
            PolicyKind::Lin { lambda: 4 },
        ];
        print!(
            "{}",
            planned_sweep_report(&SpecBench::ALL, &policies, &RunOptions::from_env(), &plan)
        );
        return;
    }
    println!("Figure 4 — IPC improvement (%) over LRU for LIN(lambda), lambda = 1..4\n");
    let mut t = Table::with_headers(&[
        "bench",
        "LIN(1)",
        "LIN(2)",
        "LIN(3)",
        "LIN(4)",
        "paperLIN(4)",
    ]);
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Lin { lambda: 1 },
        PolicyKind::Lin { lambda: 2 },
        PolicyKind::Lin { lambda: 3 },
        PolicyKind::Lin { lambda: 4 },
    ];
    let matrix = run_matrix(&SpecBench::ALL, &policies, &RunOptions::from_env());
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let lru = &results[0];
        let mut row = vec![bench.name().to_string()];
        for lin in &results[1..] {
            row.push(format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())));
        }
        row.push(format!("{:+.1}", paper_row(bench).lin_ipc_pct));
        t.row(row);
    }
    println!("{}", t.render());
}
