//! λ ablation beyond the paper's sweep: Figure 4 stops at λ = 4; this
//! extends to λ ∈ {6, 8, 16} to show where the cost term saturates (once
//! λ·cost_q dwarfs the 0–15 recency range, LIN degenerates into
//! cost-order-only replacement and the recency tie-break).

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Lambda ablation — IPC improvement (%) over LRU for large lambda\n");
    let benches = [
        SpecBench::Art,
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Parser,
        SpecBench::Mgrid,
    ];
    let lambdas = [2u32, 4, 6, 8, 16];
    let mut headers = vec!["bench".to_string()];
    headers.extend(lambdas.iter().map(|l| format!("lin({l})")));
    let mut t = Table::new(headers);
    let mut policies = vec![PolicyKind::Lru];
    policies.extend(lambdas.iter().map(|&lambda| PolicyKind::Lin { lambda }));
    let matrix = run_matrix(&benches, &policies, &RunOptions::from_env());
    for (bench, results) in benches.into_iter().zip(&matrix) {
        let lru = &results[0];
        let mut row = vec![bench.name().to_string()];
        for lin in &results[1..] {
            row.push(format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Past lambda = 4 the winners saturate (cost_q >= 4 already outbids every");
    println!("recency position) while the losers keep getting worse — the paper's choice");
    println!("of lambda = 4 sits at the knee.");
}
