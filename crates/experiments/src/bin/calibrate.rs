//! Generator-tuning dashboard: per-benchmark LRU baseline characteristics
//! plus LIN(4)/SBAR deltas, side by side with the paper's targets.
//!
//! This is the internal instrument used to tune the synthetic workload
//! parameters in `mlpsim-trace` until the qualitative shapes (Fig. 2,
//! Table 1, Fig. 4/5, Fig. 9) match the paper.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    let opts = RunOptions::from_env();
    let mut t = Table::with_headers(&[
        "bench", "ipc", "mpki", "comp%", "iso%", "d<60%", "dAvg", "LINipc%", "(paper)", "LINmiss%",
        "(paper)", "SBARipc%", "(paper)",
    ]);
    let matrix = run_matrix(
        &SpecBench::ALL,
        &[
            PolicyKind::Lru,
            PolicyKind::lin4(),
            PolicyKind::sbar_default(),
        ],
        &opts,
    );
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin, sbar) = (&results[0], &results[1], &results[2]);
        let p = paper_row(bench);
        let lin_ipc = percent_improvement(lin.ipc(), lru.ipc());
        let lin_miss = percent_improvement(lin.l2.misses as f64, lru.l2.misses as f64);
        let sbar_ipc = percent_improvement(sbar.ipc(), lru.ipc());
        t.row(vec![
            bench.name().into(),
            format!("{:.3}", lru.ipc()),
            format!("{:.1}", lru.l2_mpki()),
            format!("{:.1}", lru.compulsory_pct()),
            format!("{:.1}", lru.cost_hist.percent(7)),
            format!("{:.0}", lru.deltas.pct_lt60()),
            format!("{:.0}", lru.deltas.average()),
            format!("{:+.1}", lin_ipc),
            format!("{:+.1}", p.lin_ipc_pct),
            format!("{:+.1}", lin_miss),
            format!("{:+.1}", p.lin_miss_pct),
            format!("{:+.1}", sbar_ipc),
            format!("{:+.1}", p.sbar_ipc_pct),
        ]);
    }
    println!("{}", t.render());
}
