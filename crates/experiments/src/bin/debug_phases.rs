//! Internal diagnostic: per-interval IPC/MPKI for LRU vs LIN vs SBAR on a
//! phased benchmark (ammp by default) — a raw-text preview of Fig. 11.
//!
//! Usage: `debug_phases [bench] [interval_insts]`

use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_experiments::cli;
use std::process::ExitCode;

fn main() -> ExitCode {
    let bench = match cli::bench_from_arg(std::env::args().nth(1), "ammp") {
        Ok(b) => b,
        Err(msg) => return cli::usage_error(&msg),
    };
    let interval = match cli::u64_from_arg(std::env::args().nth(2), "interval", 400_000) {
        Ok(n) => n,
        Err(msg) => return cli::usage_error(&msg),
    };
    let trace = bench.generate(420_000, 42);
    let mut results = Vec::new();
    for policy in [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ] {
        let mut cfg = SystemConfig::baseline(policy);
        cfg.sample_interval = Some(interval);
        let r = System::new(cfg).run(trace.iter());
        println!(
            "{:10} total ipc {:.3} misses {} {}",
            r.policy,
            r.ipc(),
            r.l2.misses,
            r.policy_debug.as_deref().unwrap_or("")
        );
        results.push(r);
    }
    println!("\ninterval  lru-ipc  lin-ipc  sbar-ipc   lru-mpki  lin-mpki  sbar-mpki  lru-cq  lin-cq  sbar-cq");
    let n = results.iter().map(|r| r.samples.len()).min().unwrap_or(0);
    for i in 0..n {
        let s: Vec<_> = results.iter().map(|r| &r.samples[i]).collect();
        println!(
            "{:8} {:8.3} {:8.3} {:9.3} {:10.1} {:9.1} {:10.1} {:7.2} {:7.2} {:8.2}",
            i,
            s[0].ipc,
            s[1].ipc,
            s[2].ipc,
            s[0].mpki,
            s[1].mpki,
            s[2].mpki,
            s[0].avg_cost_q,
            s[1].avg_cost_q,
            s[2].avg_cost_q
        );
    }
    ExitCode::SUCCESS
}
