//! Extension experiment: instruction-fetch effects on MLP-aware
//! replacement.
//!
//! The paper counts instruction accesses that miss the L2 as demand
//! misses (§3.1) but evaluates data-bound SPEC benchmarks where I-misses
//! are negligible; the main experiments here therefore run with a perfect
//! I-cache. This binary turns the fetch model on and sweeps the code
//! footprint to show (a) that a kernel-sized footprint changes nothing,
//! and (b) that an I-thrashing footprint injects extra demand misses
//! whose MLP the CCL accounts like any other miss.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::icache::IcacheConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Instruction-fetch effects — code footprint vs IPC and cost profile\n");
    let mut t = Table::with_headers(&[
        "bench",
        "code",
        "I-miss",
        "fetch-stall%",
        "ipc",
        "meanCost",
        "LINipc%",
    ]);
    for bench in [SpecBench::Mcf, SpecBench::Sixtrack] {
        let trace = bench.generate(150_000, 42);
        for code_lines in [0u64, 64, 512, 2048] {
            let run = |policy| {
                let mut cfg = SystemConfig::baseline(policy);
                if code_lines > 0 {
                    cfg.icache = Some(IcacheConfig::baseline(code_lines));
                }
                System::new(cfg).run(trace.iter())
            };
            let lru = run(PolicyKind::Lru);
            let lin = run(PolicyKind::lin4());
            t.row(vec![
                bench.name().into(),
                if code_lines == 0 {
                    "perfect".into()
                } else {
                    format!("{code_lines} lines")
                },
                format!("{}", lru.icache.misses),
                format!(
                    "{:.1}",
                    lru.ifetch_stall_cycles as f64 * 100.0 / lru.cycles.max(1) as f64
                ),
                format!("{:.3}", lru.ipc()),
                format!("{:.0}", lru.cost_hist.mean()),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Kernel-sized code (64 lines) is indistinguishable from a perfect I-cache,");
    println!("justifying the main experiments' configuration. Thrashing code (2048 lines");
    println!("= 128 KB) adds a steady stream of L2 instruction misses that dilute data");
    println!("misses' measured cost and compress LIN's advantage.");
}
