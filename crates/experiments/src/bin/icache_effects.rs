//! Extension experiment: instruction-fetch effects on MLP-aware
//! replacement.
//!
//! The paper counts instruction accesses that miss the L2 as demand
//! misses (§3.1) but evaluates data-bound SPEC benchmarks where I-misses
//! are negligible; the main experiments here therefore run with a perfect
//! I-cache. This binary turns the fetch model on and sweeps the code
//! footprint to show (a) that a kernel-sized footprint changes nothing,
//! and (b) that an I-thrashing footprint injects extra demand misses
//! whose MLP the CCL accounts like any other miss.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::icache::IcacheConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

const BENCHES: [SpecBench; 2] = [SpecBench::Mcf, SpecBench::Sixtrack];
const FOOTPRINTS: [u64; 4] = [0, 64, 512, 2048];

fn main() {
    println!("Instruction-fetch effects — code footprint vs IPC and cost profile\n");
    let mut t = Table::with_headers(&[
        "bench",
        "code",
        "I-miss",
        "fetch-stall%",
        "ipc",
        "meanCost",
        "LINipc%",
    ]);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        BENCHES
            .map(|b| move || Arc::new(b.generate(150_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for code_lines in FOOTPRINTS {
            for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    if code_lines > 0 {
                        cfg.icache = Some(IcacheConfig::baseline(code_lines));
                    }
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in BENCHES {
        for code_lines in FOOTPRINTS {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            t.row(vec![
                bench.name().into(),
                if code_lines == 0 {
                    "perfect".into()
                } else {
                    format!("{code_lines} lines")
                },
                format!("{}", lru.icache.misses),
                format!(
                    "{:.1}",
                    lru.ifetch_stall_cycles as f64 * 100.0 / lru.cycles.max(1) as f64
                ),
                format!("{:.3}", lru.ipc()),
                format!("{:.0}", lru.cost_hist.mean()),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Kernel-sized code (64 lines) is indistinguishable from a perfect I-cache,");
    println!("justifying the main experiments' configuration. Thrashing code (2048 lines");
    println!("= 128 KB) adds a steady stream of L2 instruction misses that dilute data");
    println!("misses' measured cost and compress LIN's advantage.");
}
