//! §2/§5's generality claim: "any cost-sensitive replacement scheme …
//! can be used for implementing an MLP-aware replacement policy."
//!
//! This experiment feeds the same MLP-based `cost_q` into two different
//! Cost-Aware Replacement Engines — the paper's LIN and a Jeong &
//! Dubois-style BCL (the paper's reference \[8\]) — and compares them
//! against LRU. The expected shape: both cost-aware engines win where LIN
//! wins; BCL's bounded credit keeps it from LIN's worst dead-block
//! blow-ups on the unpredictable benchmarks.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_core::bcl::BclConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("CARE alternatives — IPC improvement (%) over LRU with the same mlp-cost input\n");
    let mut t = Table::with_headers(&["bench", "LIN(4)", "BCL(d4,c4)", "BCL(d8,c2)"]);
    let matrix = run_matrix(
        &SpecBench::ALL,
        &[
            PolicyKind::Lru,
            PolicyKind::lin4(),
            PolicyKind::Bcl(BclConfig {
                depth: 4,
                credit: 4,
            }),
            PolicyKind::Bcl(BclConfig {
                depth: 8,
                credit: 2,
            }),
        ],
        &RunOptions::from_env(),
    );
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin, bcl, bcl2) = (&results[0], &results[1], &results[2], &results[3]);
        t.row(vec![
            bench.name().into(),
            format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            format!("{:+.1}", percent_improvement(bcl.ipc(), lru.ipc())),
            format!("{:+.1}", percent_improvement(bcl2.ipc(), lru.ipc())),
        ]);
    }
    println!("{}", t.render());
    println!("Both engines consume the identical CCL-computed cost_q; only the victim");
    println!("function differs. BCL's credit bound trades some of LIN's upside for");
    println!("robustness on the cost-unpredictable trio (bzip2/parser/mgrid).");
}
