//! Figure 11: the ammp case study — average cost_q per miss, misses per
//! 1000 instructions, and IPC over time for LRU, LIN, and SBAR.
//!
//! The paper's shape: ammp alternates between a phase where LIN beats LRU
//! and one where LRU beats LIN; SBAR switches policies with the phases and
//! therefore outperforms either fixed policy over the whole run.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_many, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Figure 11 — ammp over time: LRU vs LIN vs SBAR\n");
    let opts = RunOptions {
        sample_interval: Some(1_000_000),
        ..RunOptions::from_env()
    };
    let mut results = run_many(
        SpecBench::Ammp,
        &[
            PolicyKind::Lru,
            PolicyKind::lin4(),
            PolicyKind::sbar_default(),
        ],
        &opts,
    );
    let (lru, lin, sbar) = {
        let sbar = results.pop().expect("three runs");
        let lin = results.pop().expect("three runs");
        let lru = results.pop().expect("three runs");
        (lru, lin, sbar)
    };

    let mut t = Table::with_headers(&[
        "Minsts",
        "lru-cq",
        "lin-cq",
        "sbar-cq",
        "lru-mpki",
        "lin-mpki",
        "sbar-mpki",
        "lru-ipc",
        "lin-ipc",
        "sbar-ipc",
    ]);
    let n = lru
        .samples
        .len()
        .min(lin.samples.len())
        .min(sbar.samples.len());
    for i in 0..n {
        let (a, b, c) = (&lru.samples[i], &lin.samples[i], &sbar.samples[i]);
        t.row(vec![
            format!("{}", a.instructions / 1_000_000),
            format!("{:.2}", a.avg_cost_q),
            format!("{:.2}", b.avg_cost_q),
            format!("{:.2}", c.avg_cost_q),
            format!("{:.1}", a.mpki),
            format!("{:.1}", b.mpki),
            format!("{:.1}", c.mpki),
            format!("{:.3}", a.ipc),
            format!("{:.3}", b.ipc),
            format!("{:.3}", c.ipc),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Whole-run IPC: lru {:.3}, lin {:.3} ({:+.1}%), sbar {:.3} ({:+.1}%)",
        lru.ipc(),
        lin.ipc(),
        percent_improvement(lin.ipc(), lru.ipc()),
        sbar.ipc(),
        percent_improvement(sbar.ipc(), lru.ipc())
    );
    println!(
        "Paper: LIN improves ammp by only 4.2% while SBAR improves it by 18.3%, because\n\
         SBAR tracks the phase-local winner. The shape to check above: intervals where\n\
         lin-ipc >> lru-ipc alternate with intervals where lru-ipc >> lin-ipc, and\n\
         sbar-ipc follows whichever is better."
    );
}
