//! Robustness extension: the headline improvements across independent
//! workload seeds (mean ± 95% CI), so no conclusion rests on one RNG
//! stream.

use mlpsim_analysis::stats::Summary;
use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_many, RunOptions};
use mlpsim_trace::spec::SpecBench;

/// One benchmark's IPC deltas for one seed, computed as a single pool job
/// (trace generation + three policy runs) so seeds fan out in parallel.
fn seed_deltas(bench: SpecBench, seed: u64) -> (f64, f64) {
    let opts = RunOptions {
        seed,
        jobs: 1, // this whole cell is already one worker's job
        ..RunOptions::default()
    };
    let results = run_many(
        bench,
        &[
            PolicyKind::Lru,
            PolicyKind::lin4(),
            PolicyKind::sbar_default(),
        ],
        &opts,
    );
    (
        percent_improvement(results[1].ipc(), results[0].ipc()),
        percent_improvement(results[2].ipc(), results[0].ipc()),
    )
}

const SEEDS: [u64; 5] = [42, 7, 1234, 90210, 31337];

fn main() {
    println!(
        "Multi-seed robustness — IPC improvement (%) over LRU, mean ± 95% CI over {} seeds\n",
        SEEDS.len()
    );
    let benches = [
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Parser,
        SpecBench::Mgrid,
        SpecBench::Ammp,
    ];
    let mut t = Table::with_headers(&["bench", "LIN(4)", "SBAR"]);
    let pool = mlpsim_exec::WorkerPool::new(mlpsim_experiments::runner::jobs_from_env());
    let mut cells = Vec::new();
    for bench in benches {
        for seed in SEEDS {
            cells.push(move || seed_deltas(bench, seed));
        }
    }
    let mut deltas = pool.map_ordered(cells).into_iter();
    for bench in benches {
        let (mut lin_deltas, mut sbar_deltas) = (Vec::new(), Vec::new());
        for _ in SEEDS {
            let (lin, sbar) = deltas.next().expect("one cell per seed");
            lin_deltas.push(lin);
            sbar_deltas.push(sbar);
        }
        t.row(vec![
            bench.name().into(),
            Summary::of(&lin_deltas).render(),
            Summary::of(&sbar_deltas).render(),
        ]);
    }
    println!("{}", t.render());
    println!("Signs and orderings must be stable across seeds; magnitudes may wobble with");
    println!("the random region walks.");
}
