//! Robustness extension: the headline improvements across independent
//! workload seeds (mean ± 95% CI), so no conclusion rests on one RNG
//! stream.

use mlpsim_analysis::stats::Summary;
use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_many, RunOptions};
use mlpsim_trace::spec::SpecBench;

const SEEDS: [u64; 5] = [42, 7, 1234, 90210, 31337];

fn main() {
    println!(
        "Multi-seed robustness — IPC improvement (%) over LRU, mean ± 95% CI over {} seeds\n",
        SEEDS.len()
    );
    let benches = [
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Parser,
        SpecBench::Mgrid,
        SpecBench::Ammp,
    ];
    let mut t = Table::with_headers(&["bench", "LIN(4)", "SBAR"]);
    for bench in benches {
        let mut lin_deltas = Vec::new();
        let mut sbar_deltas = Vec::new();
        for seed in SEEDS {
            let opts = RunOptions {
                seed,
                ..RunOptions::default()
            };
            let results = run_many(
                bench,
                &[
                    PolicyKind::Lru,
                    PolicyKind::lin4(),
                    PolicyKind::sbar_default(),
                ],
                &opts,
            );
            lin_deltas.push(percent_improvement(results[1].ipc(), results[0].ipc()));
            sbar_deltas.push(percent_improvement(results[2].ipc(), results[0].ipc()));
        }
        t.row(vec![
            bench.name().into(),
            Summary::of(&lin_deltas).render(),
            Summary::of(&sbar_deltas).render(),
        ]);
    }
    println!("{}", t.render());
    println!("Signs and orderings must be stable across seeds; magnitudes may wobble with");
    println!("the random region walks.");
}
