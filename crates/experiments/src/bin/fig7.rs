//! Figure 7: the three hybrid-replacement organizations — CBS-global,
//! sampled CBS, and SBAR — rendered structurally, with their storage
//! budgets and a behavioral spot-check on a live cache.
//!
//! (Figure 7 in the paper is a block diagram; the reproducible content is
//! the *structure* — which sets carry ATD entries and who updates PSEL —
//! and the resulting hardware budget.)

use mlpsim_core::leader::{LeaderSets, SelectionPolicy};
use mlpsim_core::overhead::{cbs_overhead, sbar_overhead, OverheadParams};

fn main() {
    println!("Figure 7 — hybrid replacement organizations\n");
    let p = OverheadParams::paper_baseline();
    let sets = p.geometry.sets();

    println!("(a) CBS-global: every set has ATD-LIN + ATD-LRU entries; one global PSEL.");
    let cbs = cbs_overhead(&p, false);
    println!(
        "    ATD entries: {} ({} sets x {} ways x 2 directories) -> {} B\n",
        2 * p.geometry.lines(),
        sets,
        p.geometry.ways(),
        cbs.total_bytes()
    );

    println!("(b) CBS-global with sampling: only leader sets keep their ATD entries.");
    let leaders = LeaderSets::new(sets, 32, SelectionPolicy::SimpleStatic, 0);
    let sampled: Vec<u32> = leaders.leaders().take(6).collect();
    println!(
        "    32 leader sets of {sets} update PSEL (first few: {sampled:?} — multiples of 33,\n\
         \x20   so bits [9:5] of the index equal bits [4:0]; a 5-bit comparator, no storage).\n"
    );

    println!("(c) SBAR: leader sets in the MTD run LIN outright; a single ATD-LRU");
    println!("    shadows only the leader sets; followers obey the PSEL MSB.");
    let sbar = sbar_overhead(&p);
    println!(
        "    ATD entries: {} (32 sets x {} ways x 1 directory) -> {} B ({}x less than CBS)",
        32 * u64::from(p.geometry.ways()),
        p.geometry.ways(),
        sbar.total_bytes(),
        cbs.atd_bits / sbar.atd_bits
    );

    // Behavioral spot check: every constituency has exactly one leader and
    // followers outnumber leaders 31:1.
    let leader_count = (0..sets).filter(|&s| leaders.is_leader(s)).count();
    assert_eq!(leader_count, 32);
    println!("\nStructural invariants verified: one leader per constituency, {leader_count}/{sets} sets lead.");
}
