//! Benchmarks the parallel sweep executor: one representative
//! `run_matrix` sweep timed at `-j1` and again at `-jN`, with the results
//! of the two runs compared cell-by-cell (the determinism guarantee,
//! enforced rather than assumed) and the wall-clock numbers written to
//! `BENCH_sweep.json` so future changes have a perf trajectory to regress
//! against.
//!
//! `N` comes from `--jobs`/`-j`/`MLPSIM_JOBS` as everywhere else, default
//! hardware threads. On a single-core host the honest result is a ~1.0×
//! "speedup"; the JSON records `host_threads` so readers can tell a
//! scheduler regression from a small machine.

use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::cli;
use mlpsim_experiments::runner::{jobs_from_env, run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;
use std::io::Write;
use std::process::ExitCode;
use std::time::Instant;

const BENCHES: [SpecBench; 4] = [
    SpecBench::Mcf,
    SpecBench::Vpr,
    SpecBench::Art,
    SpecBench::Ammp,
];
const ACCESSES: usize = 150_000;

fn main() -> ExitCode {
    let jobs = jobs_from_env();
    let policies = [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ];
    let opts = |jobs| RunOptions {
        accesses: ACCESSES,
        jobs,
        ..RunOptions::default()
    };
    println!(
        "bench_sweep — {} benches x {} policies, {} accesses each",
        BENCHES.len(),
        policies.len(),
        ACCESSES
    );

    let t0 = Instant::now();
    let serial = run_matrix(&BENCHES, &policies, &opts(1));
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("serial   (-j1): {serial_ms:8.1} ms");

    let t1 = Instant::now();
    let parallel = run_matrix(&BENCHES, &policies, &opts(jobs));
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!("parallel (-j{jobs}): {parallel_ms:8.1} ms");

    assert_eq!(
        serial, parallel,
        "parallel sweep diverged from serial — determinism guarantee broken"
    );
    let cells = BENCHES.len() * policies.len();
    let speedup = serial_ms / parallel_ms;
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("speedup: {speedup:.2}x over {cells} cells (host threads: {host_threads})");
    println!("all {cells} cells byte-identical between -j1 and -j{jobs}");
    // An oversubscribed pool can only lose to the serial run; say so in
    // the JSON rather than letting a "0.92x speedup" read as a scheduler
    // regression.
    let jobs_exceed_host_threads = jobs > host_threads;
    if jobs_exceed_host_threads {
        eprintln!(
            "warning: --jobs {jobs} exceeds the host's {host_threads} thread(s); \
             the parallel timing is oversubscribed and the speedup is not meaningful"
        );
    }

    let json = format!(
        "{{\n  \"sweep\": \"run_matrix {}x{}\",\n  \"accesses\": {ACCESSES},\n  \
         \"cells\": {cells},\n  \"jobs\": {jobs},\n  \"host_threads\": {host_threads},\n  \
         \"jobs_exceed_host_threads\": {jobs_exceed_host_threads},\n  \
         \"serial_ms\": {serial_ms:.1},\n  \"parallel_ms\": {parallel_ms:.1},\n  \
         \"speedup\": {speedup:.2},\n  \"deterministic\": true\n}}\n",
        BENCHES.len(),
        policies.len(),
    );
    let path = "BENCH_sweep.json";
    let write = std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes()));
    if let Err(e) = write {
        return cli::io_error(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
    ExitCode::SUCCESS
}
