//! Table 3: benchmark summary — type, trace size, L2 misses under the
//! baseline, and the compulsory-miss percentage.
//!
//! Absolute miss counts differ from the paper (we run synthetic slices,
//! not 250 M-instruction SimPoint regions); the column to compare is the
//! compulsory-miss *ordering*, which drives which benchmarks can profit
//! from replacement improvements at all.

use mlpsim_analysis::table::Table;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::paper::paper_row;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Table 3 — benchmark summary (baseline LRU)\n");
    let mut t = Table::with_headers(&[
        "bench",
        "type",
        "insts(M)",
        "L2miss(K)",
        "(paperK)",
        "comp%",
        "(paper)",
    ]);
    let matrix = run_matrix(&SpecBench::ALL, &[PolicyKind::Lru], &RunOptions::from_env());
    for (bench, row) in SpecBench::ALL.into_iter().zip(&matrix) {
        let r = &row[0];
        let p = paper_row(bench);
        t.row(vec![
            bench.name().into(),
            if bench.is_fp() {
                "FP".into()
            } else {
                "INT".into()
            },
            format!("{:.1}", r.instructions as f64 / 1e6),
            format!("{:.0}", r.l2.misses as f64 / 1e3),
            format!("{}", p.table3_misses_k),
            format!("{:.1}", r.compulsory_pct()),
            format!("{:.1}", p.compulsory_pct),
        ]);
    }
    println!("{}", t.render());
    println!("Paper's selection rule: only benchmarks with < 50% compulsory misses are");
    println!("studied, because replacement cannot remove compulsory misses.");
}
