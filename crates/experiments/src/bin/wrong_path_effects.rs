//! Extension experiment: wrong-path traffic and the paper's demand-miss
//! accounting rule (§3.1).
//!
//! Wrong-path loads occupy MSHR entries, banks, and bus slots and pollute
//! the caches, but the paper excludes them from demand-miss accounting
//! once the branch resolves. This sweep shows (a) the performance cost of
//! the pollution itself and (b) that the cost *histogram* stays anchored
//! to correct-path behavior because demoted misses never report a cost.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_cpu::wrongpath::WrongPathConfig;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

const BENCHES: [SpecBench; 2] = [SpecBench::Mcf, SpecBench::Vpr];
const INTERVALS: [u64; 4] = [0, 4_000, 1_000, 250];

fn main() {
    println!("Wrong-path effects — misprediction rate vs pollution and cost accounting\n");
    let mut t = Table::with_headers(&[
        "bench",
        "mispred/kinst",
        "wp-misses",
        "ipc",
        "meanCost",
        "iso%",
        "LINipc%",
    ]);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        BENCHES
            .map(|b| move || Arc::new(b.generate(150_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for interval in INTERVALS {
            for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    if interval > 0 {
                        cfg.wrong_path = Some(WrongPathConfig {
                            interval_insts: interval,
                            burst: 4,
                            resolve_cycles: 15,
                        });
                    }
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in BENCHES {
        for interval in INTERVALS {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            t.row(vec![
                bench.name().into(),
                if interval == 0 {
                    "perfect".into()
                } else {
                    format!("{:.1}", 1000.0 / interval as f64)
                },
                format!("{}", lru.wrong_path_misses),
                format!("{:.3}", lru.ipc()),
                format!("{:.0}", lru.cost_hist.mean()),
                format!("{:.1}", lru.cost_hist.percent(7)),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Heavier wrong-path rates cost IPC through pollution and bandwidth, but the");
    println!("demand-cost profile (meanCost, iso%) moves only slightly: demoted misses");
    println!("are excluded exactly as the paper prescribes, so LIN's signal survives a");
    println!("realistic branch predictor.");
}
