//! Figure 10: SBAR sensitivity to the leader-set selection policy
//! (`simple-static` vs `rand-dynamic`) and to the number of leader sets
//! (8, 16, 32).
//!
//! The paper's shape: mostly insensitive — one policy usually dominates
//! overwhelmingly, so even 8 leaders suffice; ammp is the exception, where
//! random selection helps when leaders are few.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_core::leader::SelectionPolicy;
use mlpsim_core::sbar::SbarConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_trace::spec::SpecBench;

fn main() {
    println!("Figure 10 — SBAR IPC improvement (%) over LRU by leader-set policy and count\n");
    let configs: Vec<(String, SbarConfig)> = [8u32, 16, 32]
        .iter()
        .flat_map(|&k| {
            [
                (format!("ss-{k}"), SelectionPolicy::SimpleStatic),
                (format!("rd-{k}"), SelectionPolicy::RandDynamic),
            ]
            .into_iter()
            .map(move |(label, selection)| {
                (
                    label,
                    SbarConfig {
                        leader_sets: k,
                        selection,
                        ..SbarConfig::paper_default()
                    },
                )
            })
        })
        .collect();

    let mut headers = vec!["bench".to_string()];
    headers.extend(configs.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(headers);
    let mut policies = vec![PolicyKind::Lru];
    policies.extend(configs.iter().map(|(_, cfg)| PolicyKind::Sbar(*cfg)));
    let matrix = run_matrix(&SpecBench::ALL, &policies, &RunOptions::from_env());
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let lru = &results[0];
        let mut row = vec![bench.name().to_string()];
        for r in &results[1..] {
            row.push(format!("{:+.1}", percent_improvement(r.ipc(), lru.ipc())));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("ss = simple-static, rd = rand-dynamic; the number is the leader-set count.");
}
