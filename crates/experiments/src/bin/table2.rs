//! Table 2: the baseline machine configuration, printed from the live
//! configuration structs (so the table can never drift from the code).

use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;

fn main() {
    let c = SystemConfig::baseline(PolicyKind::Lru);
    let l1 = c.l1.expect("baseline has an L1");
    println!("Table 2 — baseline processor configuration\n");
    println!(
        "Decode/Issue      : {}-wide, {}-entry instruction window",
        c.cpu.width, c.cpu.window
    );
    println!(
        "Data Cache        : {} ({}-cycle hit)",
        l1, c.cpu.l1_hit_cycles
    );
    println!(
        "Unified L2 Cache  : {} ({}-cycle hit), {}-entry MSHR, {}-entry store buffer",
        c.l2, c.cpu.l2_hit_cycles, c.mem.mshr_entries, c.cpu.store_buffer
    );
    println!(
        "Memory            : {} DRAM banks, {}-cycle access, bank conflicts modeled",
        c.mem.banks, c.mem.dram_access_cycles
    );
    println!(
        "Bus               : {}-cycle unloaded delay ({} fixed + {} transfer occupancy)",
        c.mem.bus_fixed_cycles + c.mem.bus_transfer_cycles,
        c.mem.bus_fixed_cycles,
        c.mem.bus_transfer_cycles
    );
    println!(
        "Isolated miss     : {} cycles end to end",
        c.mem.isolated_miss_cycles()
    );
    println!("\nDefault deviations from the paper (see DESIGN.md): trace-driven core with");
    println!("a perfect branch predictor and perfect I-cache (both can be enabled — see");
    println!("the wrong_path_effects / icache_effects experiments); L1 victim writebacks");
    println!("elided.");
}
