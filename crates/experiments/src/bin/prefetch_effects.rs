//! Extension experiment: next-line prefetching and MLP-aware replacement.
//!
//! Prefetching and MLP-aware replacement attack the same stall cycles
//! from opposite ends: prefetching removes (or parallelizes) stream
//! misses, replacement protects the isolated ones. The sweep shows the
//! interaction: streaming benchmarks (art, sixtrack) soak up prefetch
//! coverage, which shrinks the stream's share of stall time and *changes*
//! how much headroom is left for LIN; pointer-chasing mcf gets little
//! prefetch coverage and keeps its LIN win.

use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::prefetch::PrefetchConfig;
use mlpsim_cpu::system::System;
use mlpsim_exec::WorkerPool;
use mlpsim_experiments::runner::jobs_from_env;
use mlpsim_trace::spec::SpecBench;
use std::sync::Arc;

const BENCHES: [SpecBench; 3] = [SpecBench::Art, SpecBench::Mcf, SpecBench::Sixtrack];
const DEGREES: [usize; 4] = [0, 1, 2, 4];

fn main() {
    println!("Prefetch interaction — next-line degree vs coverage and LIN headroom\n");
    let mut t = Table::with_headers(&[
        "bench", "degree", "issued", "promoted", "L2miss", "ipc", "LINipc%",
    ]);
    let pool = WorkerPool::new(jobs_from_env());
    let traces: Vec<Arc<_>> = pool.map_ordered(
        BENCHES
            .map(|b| move || Arc::new(b.generate(150_000, 42)))
            .into(),
    );
    let mut cells = Vec::new();
    for trace in &traces {
        for degree in DEGREES {
            for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
                let trace = Arc::clone(trace);
                cells.push(move || {
                    let mut cfg = SystemConfig::baseline(policy);
                    if degree > 0 {
                        cfg.prefetch = Some(PrefetchConfig { degree });
                    }
                    System::new(cfg).run(trace.iter())
                });
            }
        }
    }
    let mut results = pool.map_ordered(cells).into_iter();
    for bench in BENCHES {
        for degree in DEGREES {
            let lru = results.next().expect("lru cell");
            let lin = results.next().expect("lin cell");
            t.row(vec![
                bench.name().into(),
                format!("{degree}"),
                format!("{}", lru.prefetches_issued),
                format!("{}", lru.prefetches_promoted),
                format!("{}", lru.l2.misses),
                format!("{:.3}", lru.ipc()),
                format!("{:+.1}", percent_improvement(lin.ipc(), lru.ipc())),
            ]);
        }
    }
    println!("{}", t.render());
    println!("Sequential-burst workloads convert their stream misses into prefetch hits");
    println!("(watch L2miss fall and ipc rise with degree); random pointer graphs do not.");
    println!("LIN's improvement shifts with whatever stall structure prefetching leaves.");
}
