//! Figure reports as library functions: the exact text the corresponding
//! experiment binary prints, returned as a `String`.
//!
//! This is the single run path shared by the CLI binaries and the
//! `mlpsim-serve` job executor — a figure submitted as a server job must
//! return results **byte-identical** to the direct CLI invocation at any
//! `--jobs` count, which only holds if both go through one function. The
//! `try_*` variants additionally take a [`CancelToken`] so a server job
//! can be cancelled (or deadline-killed) between matrix cells.

use crate::paper::paper_row;
use crate::runner::{try_run_matrix, RunOptions};
use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_exec::{CancelToken, Cancelled};
use mlpsim_trace::spec::SpecBench;
use std::fmt::Write as _;

/// Figure 5 report: the mlp-cost distribution under LRU vs LIN(4) with
/// the inset ΔMISS/ΔIPC numbers, byte-identical to the `fig5` binary's
/// stdout.
pub fn fig5_report(opts: &RunOptions) -> String {
    match try_fig5_report(opts, &CancelToken::new()) {
        Ok(s) => s,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

/// Cancellable [`fig5_report`].
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the sweep completed.
pub fn try_fig5_report(opts: &RunOptions, cancel: &CancelToken) -> Result<String, Cancelled> {
    let mut out =
        String::from("Figure 5 — mlp-cost distribution: LRU vs LIN(4), with inset deltas\n\n");
    let mut t = Table::with_headers(&[
        "bench", "policy", "0", "60", "120", "180", "240", "300", "360", "420+", "mean", "dMISS%",
        "(paper)", "dIPC%", "(paper)",
    ]);
    let matrix = try_run_matrix(
        &SpecBench::ALL,
        &[PolicyKind::Lru, PolicyKind::lin4()],
        opts,
        cancel,
    )?;
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin) = (results[0].clone(), results[1].clone());
        let p = paper_row(bench);
        let miss_delta = percent_improvement(lin.l2.misses as f64, lru.l2.misses as f64);
        let ipc_delta = percent_improvement(lin.ipc(), lru.ipc());
        for (label, r, insets) in [
            ("lru", &lru, None),
            ("lin", &lin, Some((miss_delta, ipc_delta))),
        ] {
            let mut row = vec![bench.name().to_string(), label.to_string()];
            row.extend(r.cost_hist.percents().iter().map(|x| format!("{x:.1}")));
            row.push(format!("{:.0}", r.cost_hist.mean()));
            match insets {
                Some((dm, di)) => {
                    row.push(format!("{dm:+.1}"));
                    row.push(format!("{:+.1}", p.lin_miss_pct));
                    row.push(format!("{di:+.1}"));
                    row.push(format!("{:+.1}", p.lin_ipc_pct));
                }
                None => row.extend(["".into(), "".into(), "".into(), "".into()]),
            }
            t.row(row);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    Ok(out)
}

/// Generic sweep report: `benches` × `policies`, one row per cell with
/// the headline aggregates (misses, MPKI, IPC, memory-stall cycles).
/// This is the ad-hoc comparative-analysis query the serving layer
/// exposes beyond the fixed paper figures.
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the sweep completed.
pub fn try_sweep_report(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
    cancel: &CancelToken,
) -> Result<String, Cancelled> {
    let mut out = String::from("Sweep — benchmarks x policies, headline aggregates\n\n");
    let mut t = Table::with_headers(&[
        "bench",
        "policy",
        "misses",
        "mpki",
        "ipc",
        "mem_stall_cycles",
    ]);
    let matrix = try_run_matrix(benches, policies, opts, cancel)?;
    for (bench, results) in benches.iter().zip(&matrix) {
        for (policy, r) in policies.iter().zip(results) {
            t.row(vec![
                bench.name().to_string(),
                policy.label(),
                r.l2.misses.to_string(),
                format!("{:.2}", r.l2_mpki()),
                format!("{:.4}", r.ipc()),
                r.mem_stall_cycles.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    Ok(out)
}

/// Uncancellable [`try_sweep_report`] for CLI-style callers.
pub fn sweep_report(benches: &[SpecBench], policies: &[PolicyKind], opts: &RunOptions) -> String {
    match try_sweep_report(benches, policies, opts, &CancelToken::new()) {
        Ok(s) => s,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> RunOptions {
        RunOptions {
            accesses: 1_000,
            jobs: 2,
            ..RunOptions::default()
        }
    }

    #[test]
    fn sweep_report_has_one_row_per_cell() {
        let benches = [SpecBench::Mcf, SpecBench::Art];
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        let report = sweep_report(&benches, &policies, &small_opts());
        assert!(report.contains("mcf"));
        assert!(report.contains("lin(4)"));
        // header line + separator-free Table: 1 header + 4 rows inside.
        assert!(report.lines().count() >= 5, "{report}");
    }

    #[test]
    fn cancelled_sweep_returns_err() {
        let token = CancelToken::new();
        token.cancel();
        let err = try_sweep_report(&[SpecBench::Mcf], &[PolicyKind::Lru], &small_opts(), &token)
            .expect_err("pre-cancelled token must cancel the sweep");
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn fig5_report_is_deterministic_across_job_counts() {
        let a = fig5_report(&RunOptions {
            accesses: 400,
            jobs: 1,
            ..RunOptions::default()
        });
        let b = fig5_report(&RunOptions {
            accesses: 400,
            jobs: 4,
            ..RunOptions::default()
        });
        assert_eq!(a, b, "job count must never change output bytes");
    }
}
