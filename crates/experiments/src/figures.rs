//! Figure reports as library functions: the exact text the corresponding
//! experiment binary prints, returned as a `String`.
//!
//! This is the single run path shared by the CLI binaries and the
//! `mlpsim-serve` job executor — a figure submitted as a server job must
//! return results **byte-identical** to the direct CLI invocation at any
//! `--jobs` count, which only holds if both go through one function. The
//! `try_*` variants additionally take a [`CancelToken`] so a server job
//! can be cancelled (or deadline-killed) between matrix cells.

use crate::paper::paper_row;
use crate::runner::{try_run_cells, try_run_matrix, PlanOptions, RunOptions};
use mlpsim_analysis::table::Table;
use mlpsim_analysis::util::percent_improvement;
use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_exec::{CancelToken, Cancelled, WorkerPool};
use mlpsim_model::characterize::{profile_trace, CharacterizeConfig, TraceProfile};
use mlpsim_model::plan::{score_cell, CellScore};
use mlpsim_telemetry::Event;
use mlpsim_trace::record::Trace;
use mlpsim_trace::spec::SpecBench;
use std::fmt::Write as _;
use std::sync::Arc;

/// Figure 5 report: the mlp-cost distribution under LRU vs LIN(4) with
/// the inset ΔMISS/ΔIPC numbers, byte-identical to the `fig5` binary's
/// stdout.
pub fn fig5_report(opts: &RunOptions) -> String {
    match try_fig5_report(opts, &CancelToken::new()) {
        Ok(s) => s,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

/// Cancellable [`fig5_report`].
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the sweep completed.
pub fn try_fig5_report(opts: &RunOptions, cancel: &CancelToken) -> Result<String, Cancelled> {
    let mut out =
        String::from("Figure 5 — mlp-cost distribution: LRU vs LIN(4), with inset deltas\n\n");
    let mut t = Table::with_headers(&[
        "bench", "policy", "0", "60", "120", "180", "240", "300", "360", "420+", "mean", "dMISS%",
        "(paper)", "dIPC%", "(paper)",
    ]);
    let matrix = try_run_matrix(
        &SpecBench::ALL,
        &[PolicyKind::Lru, PolicyKind::lin4()],
        opts,
        cancel,
    )?;
    for (bench, results) in SpecBench::ALL.into_iter().zip(&matrix) {
        let (lru, lin) = (results[0].clone(), results[1].clone());
        let p = paper_row(bench);
        let miss_delta = percent_improvement(lin.l2.misses as f64, lru.l2.misses as f64);
        let ipc_delta = percent_improvement(lin.ipc(), lru.ipc());
        for (label, r, insets) in [
            ("lru", &lru, None),
            ("lin", &lin, Some((miss_delta, ipc_delta))),
        ] {
            let mut row = vec![bench.name().to_string(), label.to_string()];
            row.extend(r.cost_hist.percents().iter().map(|x| format!("{x:.1}")));
            row.push(format!("{:.0}", r.cost_hist.mean()));
            match insets {
                Some((dm, di)) => {
                    row.push(format!("{dm:+.1}"));
                    row.push(format!("{:+.1}", p.lin_miss_pct));
                    row.push(format!("{di:+.1}"));
                    row.push(format!("{:+.1}", p.lin_ipc_pct));
                }
                None => row.extend(["".into(), "".into(), "".into(), "".into()]),
            }
            t.row(row);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    Ok(out)
}

/// Generic sweep report: `benches` × `policies`, one row per cell with
/// the headline aggregates (misses, MPKI, IPC, memory-stall cycles).
/// This is the ad-hoc comparative-analysis query the serving layer
/// exposes beyond the fixed paper figures.
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the sweep completed.
pub fn try_sweep_report(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
    cancel: &CancelToken,
) -> Result<String, Cancelled> {
    let mut out = String::from("Sweep — benchmarks x policies, headline aggregates\n\n");
    let mut t = Table::with_headers(&[
        "bench",
        "policy",
        "misses",
        "mpki",
        "ipc",
        "mem_stall_cycles",
    ]);
    let matrix = try_run_matrix(benches, policies, opts, cancel)?;
    for (bench, results) in benches.iter().zip(&matrix) {
        for (policy, r) in policies.iter().zip(results) {
            t.row(vec![
                bench.name().to_string(),
                policy.label(),
                r.l2.misses.to_string(),
                format!("{:.2}", r.l2_mpki()),
                format!("{:.4}", r.ipc()),
                r.mem_stall_cycles.to_string(),
            ]);
        }
    }
    let _ = writeln!(out, "{}", t.render());
    Ok(out)
}

/// Uncancellable [`try_sweep_report`] for CLI-style callers.
pub fn sweep_report(benches: &[SpecBench], policies: &[PolicyKind], opts: &RunOptions) -> String {
    match try_sweep_report(benches, policies, opts, &CancelToken::new()) {
        Ok(s) => s,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

/// One fixed-format simulated-cell line for the planned report. These
/// lines are deliberately *not* table cells: their bytes depend only on
/// the cell's own result, never on which other cells survived pruning,
/// which is what lets CI assert a planned run's survivors verbatim
/// against an unpruned run (`--prune-margin 0`). The value formats match
/// [`try_sweep_report`]'s columns exactly.
fn cell_line(bench: SpecBench, policy: &PolicyKind, r: &SimResult) -> String {
    format!(
        "cell bench={} policy={} misses={} mpki={:.2} ipc={:.4} mem_stall_cycles={}",
        bench.name(),
        policy.label(),
        r.l2.misses,
        r.l2_mpki(),
        r.ipc(),
        r.mem_stall_cycles,
    )
}

/// Planned sweep report: score every `benches` × `policies` cell with the
/// analytical model ([`mlpsim_model`]), prune cells whose predicted
/// miss-rate delta vs the incumbent falls below [`PlanOptions::margin`],
/// simulate only the survivors (through the same per-cell path as a full
/// sweep — their output bytes are identical to an unpruned run), and
/// record estimated vs simulated miss rates for every survivor.
///
/// Telemetry: one `plan_cell` event per cell and a `plan_summary` event
/// stream into [`RunOptions::telemetry`] before the survivors' simulation
/// events, all in deterministic bench-major order at any `--jobs`.
///
/// # Errors
///
/// [`Cancelled`] when the token fired before the surviving cells
/// completed.
pub fn try_planned_sweep_report(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
    plan: &PlanOptions,
    cancel: &CancelToken,
) -> Result<String, Cancelled> {
    let pool = WorkerPool::new(opts.jobs);
    let (accesses, seed) = (opts.accesses, opts.seed);
    let traces: Vec<Arc<Trace>> = pool.try_map_ordered(
        benches
            .iter()
            .map(|&b| move || Arc::new(b.generate(accesses, seed)))
            .collect(),
        cancel,
    )?;
    let profiles: Vec<TraceProfile> = pool.try_map_ordered(
        traces
            .iter()
            .map(|t| {
                let t = Arc::clone(t);
                move || profile_trace(&t, &CharacterizeConfig::baseline())
            })
            .collect(),
        cancel,
    )?;

    // The run path simulates the paper's baseline L2; that is the
    // geometry every cell of a figure sweep is scored against.
    let geometry = Geometry::baseline_l2();
    let margin = plan.margin;
    let mut out = format!(
        "Sweep plan — estimate, prune, then simulate survivors (prune margin {margin:.4})\n\n"
    );
    let mut t = Table::with_headers(&[
        "bench",
        "policy",
        "est_miss_rate",
        "band",
        "delta",
        "verdict",
    ]);
    let mut scores: Vec<(usize, usize, CellScore)> = Vec::new();
    for (bi, bench) in benches.iter().enumerate() {
        for (pi, policy) in policies.iter().enumerate() {
            let s = score_cell(&profiles[bi], geometry, &policy.label(), margin);
            opts.telemetry.emit(Event::PlanCell {
                bench: bench.name().to_string(),
                policy: policy.label(),
                est_miss_rate: s.estimate.miss_rate,
                band: s.estimate.band,
                delta: s.delta,
                pruned: s.pruned,
                reason: s.reason.clone(),
            });
            t.row(vec![
                bench.name().to_string(),
                policy.label(),
                format!("{:.4}", s.estimate.miss_rate),
                format!("{:.4}", s.estimate.band),
                format!("{:.4}", s.delta),
                if s.pruned {
                    "prune".into()
                } else {
                    "simulate".into()
                },
            ]);
            scores.push((bi, pi, s));
        }
    }
    let _ = writeln!(out, "{}", t.render());

    for (bi, pi, s) in &scores {
        if s.pruned {
            let _ = writeln!(
                out,
                "pruned bench={} policy={} reason=\"{}\"",
                benches[*bi].name(),
                policies[*pi].label(),
                s.reason,
            );
        }
    }
    let total = scores.len();
    let pruned = scores.iter().filter(|(_, _, s)| s.pruned).count();
    let surviving = total - pruned;
    let pct = if total == 0 {
        0.0
    } else {
        100.0 * pruned as f64 / total as f64
    };
    let _ = writeln!(
        out,
        "plan: {total} cells, pruned {pruned} ({pct:.1}%), simulating {surviving}\n"
    );
    opts.telemetry.emit(Event::PlanSummary {
        cells: total as u64,
        pruned: pruned as u64,
        simulated: surviving as u64,
        margin,
    });

    let survivors: Vec<(usize, usize)> = scores
        .iter()
        .filter(|(_, _, s)| !s.pruned)
        .map(|&(bi, pi, _)| (bi, pi))
        .collect();
    let cells: Vec<(usize, PolicyKind)> = survivors
        .iter()
        .map(|&(bi, pi)| (bi, policies[pi]))
        .collect();
    let results = try_run_cells(&traces, &cells, opts, cancel)?;

    out.push_str("Simulated survivors (byte-identical to the unplanned run of the same cells):\n");
    for (&(bi, pi), r) in survivors.iter().zip(&results) {
        let _ = writeln!(out, "{}", cell_line(benches[bi], &policies[pi], r));
    }
    out.push_str("\nEstimated vs simulated (model check; est is the LRU miss-rate model):\n");
    for (&(bi, pi), r) in survivors.iter().zip(&results) {
        let est = scores
            .iter()
            .find(|&&(sbi, spi, _)| sbi == bi && spi == pi)
            .map(|(_, _, s)| s.estimate)
            .expect("every survivor was scored");
        let sim = r.l2.miss_ratio();
        let _ = writeln!(
            out,
            "model-check bench={} policy={} est_miss_rate={:.4} sim_miss_rate={:.4} abs_err={:.4} band={:.4}",
            benches[bi].name(),
            policies[pi].label(),
            est.miss_rate,
            sim,
            (est.miss_rate - sim).abs(),
            est.band,
        );
    }
    Ok(out)
}

/// Uncancellable [`try_planned_sweep_report`] for CLI-style callers.
pub fn planned_sweep_report(
    benches: &[SpecBench],
    policies: &[PolicyKind],
    opts: &RunOptions,
    plan: &PlanOptions,
) -> String {
    match try_planned_sweep_report(benches, policies, opts, plan, &CancelToken::new()) {
        Ok(s) => s,
        Err(_) => unreachable!("a private fresh token is never cancelled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> RunOptions {
        RunOptions {
            accesses: 1_000,
            jobs: 2,
            ..RunOptions::default()
        }
    }

    #[test]
    fn sweep_report_has_one_row_per_cell() {
        let benches = [SpecBench::Mcf, SpecBench::Art];
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        let report = sweep_report(&benches, &policies, &small_opts());
        assert!(report.contains("mcf"));
        assert!(report.contains("lin(4)"));
        // header line + separator-free Table: 1 header + 4 rows inside.
        assert!(report.lines().count() >= 5, "{report}");
    }

    #[test]
    fn cancelled_sweep_returns_err() {
        let token = CancelToken::new();
        token.cancel();
        let err = try_sweep_report(&[SpecBench::Mcf], &[PolicyKind::Lru], &small_opts(), &token)
            .expect_err("pre-cancelled token must cancel the sweep");
        assert_eq!(err.completed, 0);
    }

    #[test]
    fn planned_sweep_prunes_cells_and_keeps_survivors_byte_identical() {
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        // Long enough for reuse distances to reach the baseline L2's
        // transition region, so some LIN cells genuinely survive and the
        // byte-identity check below is non-vacuous.
        let opts = RunOptions {
            accesses: 20_000,
            jobs: 2,
            ..RunOptions::default()
        };
        let planned =
            planned_sweep_report(&SpecBench::ALL, &policies, &opts, &PlanOptions::default());
        let total = SpecBench::ALL.len() * policies.len();
        let pruned = planned.lines().filter(|l| l.starts_with("pruned ")).count();
        assert!(
            pruned * 10 >= total * 3,
            "expected >= 30% pruned, got {pruned}/{total}:\n{planned}"
        );
        let survivors = planned.lines().filter(|l| l.starts_with("cell ")).count();
        assert!(survivors > 0, "expected some surviving cells:\n{planned}");
        // Margin 0 keeps every cell (the prune compare is strict `<`), so
        // its `cell` lines are the unpruned reference output.
        let full = planned_sweep_report(
            &SpecBench::ALL,
            &policies,
            &opts,
            &PlanOptions { margin: 0.0 },
        );
        let full_cells: Vec<&str> = full.lines().filter(|l| l.starts_with("cell ")).collect();
        assert_eq!(full_cells.len(), total, "margin 0 must simulate every cell");
        for line in planned.lines().filter(|l| l.starts_with("cell ")) {
            assert!(
                full_cells.contains(&line),
                "survivor line not byte-identical to the unpruned run: {line}"
            );
        }
    }

    #[test]
    fn planned_sweep_is_deterministic_across_job_counts() {
        let policies = [PolicyKind::Lru, PolicyKind::lin4()];
        let plan = PlanOptions::default();
        let a = planned_sweep_report(
            &SpecBench::ALL,
            &policies,
            &RunOptions {
                accesses: 400,
                jobs: 1,
                ..RunOptions::default()
            },
            &plan,
        );
        let b = planned_sweep_report(
            &SpecBench::ALL,
            &policies,
            &RunOptions {
                accesses: 400,
                jobs: 4,
                ..RunOptions::default()
            },
            &plan,
        );
        assert_eq!(a, b, "job count must never change planned output bytes");
    }

    #[test]
    fn cancelled_planned_sweep_returns_err() {
        let token = CancelToken::new();
        token.cancel();
        try_planned_sweep_report(
            &[SpecBench::Mcf],
            &[PolicyKind::Lru],
            &small_opts(),
            &PlanOptions::default(),
            &token,
        )
        .expect_err("pre-cancelled token must cancel the planned sweep");
    }

    #[test]
    fn fig5_report_is_deterministic_across_job_counts() {
        let a = fig5_report(&RunOptions {
            accesses: 400,
            jobs: 1,
            ..RunOptions::default()
        });
        let b = fig5_report(&RunOptions {
            accesses: 400,
            jobs: 4,
            ..RunOptions::default()
        });
        assert_eq!(a, b, "job count must never change output bytes");
    }
}
