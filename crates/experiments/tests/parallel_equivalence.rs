#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! The executor's determinism contract, tested end to end: a
//! [`run_matrix`] sweep must produce the same `SimResult` for every cell
//! — and the same telemetry byte stream — at `-j1` and at any `-jN`.
//! Worker count may only change wall-clock time, never output.

use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::stats::SimResult;
use mlpsim_experiments::runner::{run_matrix, RunOptions};
use mlpsim_telemetry::{NdjsonSink, SinkHandle};
use mlpsim_trace::spec::SpecBench;
use std::path::Path;

const BENCHES: [SpecBench; 2] = [SpecBench::Mcf, SpecBench::Art];

fn policies() -> [PolicyKind; 3] {
    [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ]
}

fn matrix_at(jobs: usize, telemetry: SinkHandle) -> Vec<Vec<SimResult>> {
    let opts = RunOptions {
        accesses: 20_000,
        jobs,
        telemetry,
        ..RunOptions::default()
    };
    run_matrix(&BENCHES, &policies(), &opts)
}

#[test]
fn matrix_results_identical_at_any_job_count() {
    let serial = matrix_at(1, SinkHandle::disabled());
    assert_eq!(serial.len(), BENCHES.len());
    for jobs in [2, 4, 7] {
        let parallel = matrix_at(jobs, SinkHandle::disabled());
        assert_eq!(serial, parallel, "matrix diverged at -j{jobs}");
    }
}

#[test]
fn telemetry_stream_identical_at_any_job_count() {
    let run = |jobs: usize, path: &Path| {
        let sink = NdjsonSink::create(path).expect("create ndjson file");
        // The matrix clones the handle; dropping ours last forces the
        // final registry snapshot + flush before the bytes are read.
        matrix_at(jobs, SinkHandle::of(sink));
    };
    let dir = std::env::temp_dir();
    let serial_path = dir.join("mlpsim-parallel-equivalence-j1.ndjson");
    let parallel_path = dir.join("mlpsim-parallel-equivalence-j4.ndjson");
    run(1, &serial_path);
    run(4, &parallel_path);
    let serial = std::fs::read(&serial_path).expect("read -j1 stream");
    let parallel = std::fs::read(&parallel_path).expect("read -j4 stream");
    let _ = std::fs::remove_file(&serial_path);
    let _ = std::fs::remove_file(&parallel_path);
    assert!(!serial.is_empty(), "telemetry stream must not be empty");
    assert_eq!(
        serial, parallel,
        "telemetry byte stream diverged between -j1 and -j4"
    );
}
