//! Cross-validation of the analytical miss-rate estimators against the
//! real simulator (ISSUE 10 satellite): every bundled trace, LRU at three
//! L2 capacities, each estimator's error within its own stated band.
//!
//! The tolerances are pinned here as constants rather than read from the
//! estimators, so a future change that silently widens a band fails this
//! test instead of passing by construction.

#![allow(clippy::unwrap_used)]

use mlpsim_cache::addr::Geometry;
use mlpsim_cpu::config::SystemConfig;
use mlpsim_cpu::policy::PolicyKind;
use mlpsim_cpu::system::System;
use mlpsim_model::characterize::{profile_trace, CharacterizeConfig};
use mlpsim_model::estimate::{MissRateEstimator, ReuseDistEstimator, ZipfWsEstimator};
use mlpsim_trace::spec::SpecBench;

const ACCESSES: usize = 30_000;
const SEED: u64 = 42;
/// The three L2 capacities validated: 512 KiB, 1 MiB (the paper's
/// baseline), 2 MiB — all 16-way, 64-byte lines, so 512/1024/2048 sets.
const CAPACITIES: [u64; 3] = [512 << 10, 1 << 20, 2 << 20];
/// Pinned ceiling on the reuse-distance estimator's band at geometries it
/// profiled exactly. 2% of all accesses, asserted so the "exact" path
/// cannot quietly degrade into an approximation.
const MAX_REUSE_DIST_BAND: f64 = 0.02;
/// Pinned ceiling on the working-set estimator's self-reported band. It
/// is a coarse IRM model; 0.5 is the widest it is ever allowed to claim.
const MAX_ZIPF_WS_BAND: f64 = 0.5;

#[test]
fn estimators_stay_within_their_stated_bands_for_lru() {
    let set_counts: Vec<u32> = CAPACITIES
        .iter()
        .map(|&cap| Geometry::new(cap, 16, 64).unwrap().sets())
        .collect();
    for bench in SpecBench::ALL {
        let trace = bench.generate(ACCESSES, SEED);
        // One profile answers all three capacities: the characterizer
        // keeps a per-set stack-distance profile for each set count, all
        // behind the same baseline L1 filter the simulator uses.
        let mut cfg = CharacterizeConfig::baseline();
        cfg.set_profile_sets = set_counts.clone();
        let profile = profile_trace(&trace, &cfg);
        for &capacity in &CAPACITIES {
            let geometry = Geometry::new(capacity, 16, 64).unwrap();
            let mut sys_cfg = SystemConfig::baseline(PolicyKind::Lru);
            sys_cfg.l2 = geometry;
            let sim = System::new(sys_cfg).run(trace.iter()).l2.miss_ratio();

            let exact = ReuseDistEstimator.estimate(&profile, geometry);
            assert!(
                exact.band <= MAX_REUSE_DIST_BAND,
                "{} @{capacity}B: reuse-dist band {} exceeds the pinned {MAX_REUSE_DIST_BAND} \
                 — the exact path regressed to an approximation",
                bench.name(),
                exact.band,
            );
            let err = (exact.miss_rate - sim).abs();
            assert!(
                err <= exact.band,
                "{} @{capacity}B: reuse-dist estimate {:.4} vs simulated {sim:.4} \
                 (err {err:.4}) outside its stated band {:.4}",
                bench.name(),
                exact.miss_rate,
                exact.band,
            );

            let coarse = ZipfWsEstimator.estimate(&profile, geometry);
            assert!(
                coarse.band <= MAX_ZIPF_WS_BAND,
                "{} @{capacity}B: zipf-ws band {} exceeds the pinned {MAX_ZIPF_WS_BAND}",
                bench.name(),
                coarse.band,
            );
            let err = (coarse.miss_rate - sim).abs();
            assert!(
                err <= coarse.band,
                "{} @{capacity}B: zipf-ws estimate {:.4} vs simulated {sim:.4} \
                 (err {err:.4}) outside its stated band {:.4}",
                bench.name(),
                coarse.miss_rate,
                coarse.band,
            );
        }
    }
}
