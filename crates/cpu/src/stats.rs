//! Per-run simulation results.

use crate::timeseries::Sample;
use mlpsim_analysis::delta::DeltaStats;
use mlpsim_analysis::hist::CostHistogram;
use mlpsim_cache::model::CacheStats;
use mlpsim_mem::MemStats;
use mlpsim_telemetry::StallLedger;

/// Everything a single simulation run produces.
///
/// `PartialEq` backs the executor's determinism contract: the parallel
/// sweep tests assert cell-for-cell equality between `-j1` and `-jN` runs
/// (exact, including the `f64` fields — same inputs, same instruction
/// stream, same bits).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimResult {
    /// Policy label the L2 ran with.
    pub policy: String,
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
    /// L1 data-cache statistics (zeroed when the L1 is disabled).
    pub l1: CacheStats,
    /// Instruction-cache statistics (zeroed when fetch modeling is off).
    pub icache: CacheStats,
    /// Cycles dispatch spent blocked on instruction fetch.
    pub ifetch_stall_cycles: u64,
    /// Synthetic wrong-path accesses injected (0 unless enabled).
    pub wrong_path_accesses: u64,
    /// Wrong-path accesses that allocated an MSHR entry before being
    /// demoted at branch resolution.
    pub wrong_path_misses: u64,
    /// Next-line prefetches issued to memory (0 unless enabled).
    pub prefetches_issued: u64,
    /// Prefetches a demand access merged into while still in flight
    /// (promoted to demand status mid-flight).
    pub prefetches_promoted: u64,
    /// L2 statistics — the cache whose replacement the paper studies.
    pub l2: CacheStats,
    /// L2 misses to never-before-seen lines (compulsory misses, Table 3).
    pub l2_compulsory: u64,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Distribution of MLP-based cost over serviced demand misses
    /// (Figures 2 and 5).
    pub cost_hist: CostHistogram,
    /// Successive-miss cost deltas (Table 1).
    pub deltas: DeltaStats,
    /// Cycles in which the window was full and the head not yet complete.
    pub full_window_stall_cycles: u64,
    /// Stall cycles whose blocking head was an L2 miss (memory-related
    /// stalls — what MLP-aware replacement minimizes).
    pub mem_stall_cycles: u64,
    /// Distinct full-window stall episodes (the "long-latency stalls" of
    /// the paper's Figure 1).
    pub stall_episodes: u64,
    /// Highest number of simultaneously outstanding demand misses.
    pub peak_mlp: usize,
    /// Interval samples (Fig. 11), when sampling was enabled.
    pub samples: Vec<Sample>,
    /// Per-miss `(line, mlp_cost)` log, when
    /// [`collect_miss_log`](crate::config::SystemConfig::collect_miss_log)
    /// was enabled.
    pub miss_log: Vec<(u64, f64)>,
    /// Stall-cycle attribution ledger — `mem_stall_cycles` partitioned
    /// exactly over (set, cost_q, policy) keys (see `mlpsim-cpu::attrib`).
    /// `Some` when a probe was attached or the `invariants` feature is on.
    pub stall_ledger: Option<StallLedger>,
    /// The L2 engine's final diagnostic state (PSEL values and adaptation
    /// counters for hybrid policies), if it exposes one.
    pub policy_debug: Option<String>,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L2 misses per 1000 retired instructions.
    pub fn l2_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l2.misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Percentage of L2 misses that were compulsory (Table 3's last
    /// column).
    pub fn compulsory_pct(&self) -> f64 {
        if self.l2.misses == 0 {
            0.0
        } else {
            self.l2_compulsory as f64 * 100.0 / self.l2.misses as f64
        }
    }

    /// Mean MLP-based cost per serviced miss.
    pub fn mean_cost(&self) -> f64 {
        self.cost_hist.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let r = SimResult {
            instructions: 1000,
            cycles: 2000,
            l2: CacheStats {
                misses: 50,
                hits: 100,
                ..CacheStats::default()
            },
            l2_compulsory: 10,
            ..SimResult::default()
        };
        assert_eq!(r.ipc(), 0.5);
        assert_eq!(r.l2_mpki(), 50.0);
        assert_eq!(r.compulsory_pct(), 20.0);
    }

    #[test]
    fn zero_division_is_safe() {
        let r = SimResult::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.l2_mpki(), 0.0);
        assert_eq!(r.compulsory_pct(), 0.0);
    }
}
