//! The L2 replacement-policy registry.

use mlpsim_cache::addr::Geometry;
use mlpsim_cache::fifo::FifoEngine;
use mlpsim_cache::lru::LruEngine;
use mlpsim_cache::policy::ReplacementEngine;
use mlpsim_cache::random::RandomEngine;
use mlpsim_core::bcl::{BclConfig, BclEngine};
use mlpsim_core::cbs::{CbsConfig, CbsEngine};
use mlpsim_core::lin::LinEngine;
use mlpsim_core::sbar::{SbarConfig, SbarEngine};

/// Which replacement policy the L2 runs.
#[derive(Clone, Copy, Debug)]
pub enum PolicyKind {
    /// The baseline least-recently-used policy.
    Lru,
    /// First-in-first-out (extra baseline).
    Fifo,
    /// Seeded random replacement (extra baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// The paper's Linear policy with weight λ (§5.1).
    Lin {
        /// The cost weight λ (paper default 4).
        lambda: u32,
    },
    /// Basic cost-sensitive LRU in the style of Jeong & Dubois (the
    /// paper's reference \[8\]) — an alternative CARE for the MLP-based
    /// cost.
    Bcl(BclConfig),
    /// Sampling Based Adaptive Replacement (§6.4).
    Sbar(SbarConfig),
    /// Contest Based Selection with per-set PSELs (§6.2).
    CbsLocal,
    /// Contest Based Selection with one global PSEL (§6.2, footnote 7).
    CbsGlobal,
}

impl PolicyKind {
    /// The paper's default LIN configuration (λ = 4).
    pub fn lin4() -> Self {
        PolicyKind::Lin { lambda: 4 }
    }

    /// The paper's default SBAR configuration (32 leader sets,
    /// simple-static, 6-bit PSEL, λ = 4).
    pub fn sbar_default() -> Self {
        PolicyKind::Sbar(SbarConfig::paper_default())
    }

    /// Instantiates the engine for a cache of the given geometry.
    pub fn build(&self, geometry: Geometry) -> Box<dyn ReplacementEngine> {
        match *self {
            PolicyKind::Lru => Box::new(LruEngine::new()),
            PolicyKind::Fifo => Box::new(FifoEngine::new()),
            PolicyKind::Random { seed } => Box::new(RandomEngine::new(seed)),
            PolicyKind::Lin { lambda } => Box::new(LinEngine::new(lambda)),
            PolicyKind::Bcl(cfg) => Box::new(BclEngine::new(cfg)),
            PolicyKind::Sbar(cfg) => Box::new(SbarEngine::new(geometry, cfg)),
            PolicyKind::CbsLocal => Box::new(CbsEngine::new(geometry, CbsConfig::local())),
            PolicyKind::CbsGlobal => Box::new(CbsEngine::new(geometry, CbsConfig::global())),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match *self {
            PolicyKind::Lru => "lru".into(),
            PolicyKind::Fifo => "fifo".into(),
            PolicyKind::Random { .. } => "random".into(),
            PolicyKind::Lin { lambda } => format!("lin({lambda})"),
            PolicyKind::Bcl(cfg) => format!("bcl(d={},c={})", cfg.depth, cfg.credit),
            PolicyKind::Sbar(cfg) => format!("sbar(k={})", cfg.leader_sets),
            PolicyKind::CbsLocal => "cbs-local".into(),
            PolicyKind::CbsGlobal => "cbs-global".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_policy() {
        let g = Geometry::baseline_l2();
        for p in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random { seed: 1 },
            PolicyKind::lin4(),
            PolicyKind::Bcl(BclConfig::default_config()),
            PolicyKind::sbar_default(),
            PolicyKind::CbsLocal,
            PolicyKind::CbsGlobal,
        ] {
            let engine = p.build(g);
            assert!(!engine.name().is_empty());
            assert!(!p.label().is_empty());
        }
    }

    #[test]
    fn labels_carry_parameters() {
        assert_eq!(PolicyKind::Lin { lambda: 2 }.label(), "lin(2)");
        assert_eq!(PolicyKind::sbar_default().label(), "sbar(k=32)");
    }
}
