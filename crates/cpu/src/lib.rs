#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Trace-driven out-of-order processor timing model.
//!
//! This crate provides the timing substrate the paper's evaluation runs
//! on: an eight-wide out-of-order core with a 128-entry instruction
//! window (Table 2), wired to a two-level cache hierarchy, a 32-entry
//! MSHR with the paper's cost-calculation logic, and a banked DRAM memory
//! system.
//!
//! The model is *trace-driven*: instructions come from a
//! [`mlpsim_trace::record::Trace`] and carry no data dependences.
//! What the model does capture — faithfully — is the phenomenon the paper
//! studies: loads dispatched within one window span overlap their misses
//! (high MLP, low per-miss cost), while loads spaced a window apart
//! serialize (isolated misses, full cost). See `DESIGN.md` for the
//! substitution argument.
//!
//! * [`window`] — the instruction window (in-order retirement, 8-wide),
//! * [`attrib`] — stall-cycle attribution: full-window memory stalls are
//!   apportioned `1/N` across outstanding demand misses into a ledger
//!   keyed by (set, cost_q, policy) that reconciles exactly with
//!   `mem_stall_cycles`,
//! * [`icache`] — optional instruction-fetch modeling (I-misses are
//!   demand misses in the paper's cost accounting),
//! * [`storebuf`] — the 128-entry store buffer (store misses do not block
//!   retirement unless the buffer fills, per Table 2),
//! * [`prefetch`] — optional next-line L2 prefetching (prefetch misses
//!   are non-demand until a demand access merges, per the cost model),
//! * [`policy`] — the replacement-policy registry ([`PolicyKind`]),
//! * [`system`] — the full [`system::System`],
//! * [`stats`] — per-run results ([`stats::SimResult`]),
//! * [`timeseries`] — interval sampling for the paper's Fig. 11,
//! * [`wrongpath`] — optional synthetic wrong-path traffic (demand until
//!   confirmed wrong-path, then demoted — the paper's §3.1 rule).

/// Model-checking assertion for the CPU-side attribution invariants
/// (span nesting, divisor recount, ledger/`mem_stall_cycles`
/// reconciliation). Compiled to a real `assert!` only under the
/// `invariants` feature; a no-op (zero cost, in release and debug alike)
/// otherwise. See DESIGN.md §10–§11.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// No-op twin of the `invariants`-enabled assertion (feature disabled).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {};
}

pub mod attrib;
pub mod config;
pub mod icache;
pub mod policy;
pub mod prefetch;
pub mod stats;
pub mod storebuf;
pub mod system;
pub mod timeseries;
pub mod window;
pub mod wrongpath;

pub use config::{CpuConfig, SystemConfig};
pub use policy::PolicyKind;
pub use stats::SimResult;
pub use system::System;
