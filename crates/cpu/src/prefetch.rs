//! Next-line prefetching at the L2.
//!
//! The paper's introduction names prefetching among the techniques that
//! "improve performance by parallelizing long-latency memory operations";
//! its cost accounting handles prefetches implicitly: only *demand*
//! misses accrue MLP-based cost, so an in-flight prefetch neither pays
//! nor dilutes cost until a demand access merges into it — at which point
//! the MSHR entry is promoted to demand status and starts accruing.
//!
//! The prefetcher here is the classic next-line scheme: a demand L2 miss
//! to line `X` issues non-demand fills for `X+1 … X+degree` (skipping
//! lines that are resident or already in flight, and yielding to MSHR
//! pressure). Prefetched lines are inserted with `cost_q = 0`, so an
//! MLP-aware replacement engine treats them as cheap to lose — which is
//! correct: losing a prefetched line costs at most a re-prefetch.
//!
//! Off by default (`SystemConfig::prefetch = None`), matching the paper's
//! baseline; the `prefetch_effects` experiment quantifies the
//! interaction.

use serde::{Deserialize, Serialize};

/// Configuration of the next-line L2 prefetcher.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Lines prefetched ahead of each demand miss.
    pub degree: usize,
}

impl PrefetchConfig {
    /// A conservative degree-1 next-line prefetcher.
    pub fn next_line() -> Self {
        PrefetchConfig { degree: 1 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_is_degree_one() {
        assert_eq!(PrefetchConfig::next_line().degree, 1);
    }
}
