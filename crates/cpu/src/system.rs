//! The full simulated system: core + caches + MSHR/CCL + memory.
//!
//! # Timing model
//!
//! The model is cycle-accurate where the paper's phenomenon lives and
//! simplified elsewhere:
//!
//! * Up to `width` instructions dispatch into the 128-entry window per
//!   cycle and up to `width` retire in order per cycle.
//! * Non-memory instructions complete one cycle after dispatch.
//! * Loads resolve against L1 (2 cycles), L2 (15 cycles), or memory
//!   (444 cycles unloaded; bank conflicts and bus contention modeled).
//!   A load's window entry retires only when its data arrives, so a miss
//!   at the window head stalls the machine — and misses dispatched within
//!   one window span overlap, which is precisely the MLP structure the
//!   paper's cost model measures.
//! * Stores retire into the 128-entry store buffer immediately; only a
//!   full buffer stalls dispatch (Table 2).
//! * Concurrent accesses to an in-flight line merge into one MSHR entry
//!   (one miss, per the paper's footnote 1).
//!
//! Cycles in which nothing can happen (window full, head miss pending)
//! are skipped in O(1); the CCL accrues `Δcycles / N` at each MSHR event,
//! which is arithmetically identical to the paper's per-cycle Algorithm 1.

use crate::attrib::AttribTracker;
use crate::config::SystemConfig;
use crate::icache::FetchWalker;
use crate::stats::SimResult;
use crate::storebuf::StoreBuffer;
use crate::timeseries::Sampler;
use crate::window::{InstructionWindow, WinEntry};
use crate::wrongpath::WRONG_PATH_BASE_LINE;
use mlpsim_analysis::delta::DeltaTracker;
use mlpsim_analysis::hist::CostHistogram;
use mlpsim_cache::addr::LineAddr;
use mlpsim_cache::model::CacheModel;
use mlpsim_cache::policy::ReplacementEngine;
use mlpsim_core::ccl::Ccl;
use mlpsim_core::quant::quantize;
use mlpsim_mem::{MemorySystem, Mshr};
use mlpsim_telemetry::{Event, NoProbe, Probe};
use mlpsim_trace::record::{Access, AccessKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A full-window stall must be at least this long (cycles) to count as a
/// distinct "long-latency stall" episode — long enough to exclude the
/// few-cycle staggering between parallel misses draining the bus, short
/// enough to catch every isolated miss (444 cycles).
pub const LONG_STALL_CYCLES: u64 = 150;

/// The simulated machine. Create one per run; [`System::run`] consumes it.
///
/// # Example
///
/// ```
/// use mlpsim_cpu::{PolicyKind, System, SystemConfig};
/// use mlpsim_trace::record::{Access, Trace};
///
/// // One isolated L2 miss: the paper's 444-cycle round trip.
/// let trace = Trace::from_accesses(vec![Access::load(0, 400)]);
/// let result = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
/// assert_eq!(result.l2.misses, 1);
/// assert!((result.mean_cost() - 444.0).abs() < 0.5);
/// ```
pub struct System<P: Probe = NoProbe> {
    cfg: SystemConfig,
    /// Telemetry probe. With the default [`NoProbe`] every emission site
    /// is statically dead code (`P::ENABLED` is a `const false`), so the
    /// uninstrumented system compiles to the same machine code as before
    /// the telemetry layer existed.
    probe: P,
    l1: Option<CacheModel>,
    /// Optional instruction-fetch model: the I-cache and the synthetic
    /// code walker.
    icache: Option<(CacheModel, FetchWalker)>,
    /// Cycle until which instruction fetch (and therefore dispatch) is
    /// blocked on an I-miss.
    ifetch_ready_at: u64,
    ifetch_stall_cycles: u64,
    /// Pending wrong-path resolutions: `(resolve_at, slot, line, alloc)`.
    squashes: BinaryHeap<Reverse<(u64, usize, u64, u64)>>,
    /// Instructions dispatched (for misprediction scheduling).
    dispatched_total: u64,
    next_branch_at: u64,
    wrong_path_cursor: u64,
    wrong_path_injected: u64,
    wrong_path_mshr_misses: u64,
    prefetches_issued: u64,
    prefetches_promoted: u64,
    l2: CacheModel,
    mshr: Mshr,
    ccl: Ccl,
    /// Footnote-4 mode: open the CCL gate only during stall spans.
    gated_cost: bool,
    mem: MemorySystem,
    window: InstructionWindow,
    stbuf: StoreBuffer,
    now: u64,
    seq: u64,
    dispatched_this_cycle: u32,
    retired: u64,
    next_epoch: u64,
    cost_hist: CostHistogram,
    deltas: DeltaTracker,
    stall_cycles: u64,
    mem_stall_cycles: u64,
    stall_episodes: u64,
    last_retire_cycle: u64,
    sampler: Option<Sampler>,
    miss_log: Option<Vec<(u64, f64)>>,
    /// Stall-cycle attribution (see [`crate::attrib`]). `Some` when the
    /// probe is enabled or the `invariants` feature is on; `None`
    /// otherwise, so the uninstrumented hot path carries no tracker work.
    attrib: Option<AttribTracker>,
    policy_label: String,
}

impl System {
    /// Builds a system from a configuration (the L2 engine is instantiated
    /// from `cfg.policy`).
    pub fn new(cfg: SystemConfig) -> Self {
        System::with_probe(cfg, NoProbe)
    }

    /// Builds a system with an explicit L2 replacement engine (used for
    /// oracle policies like Belady's OPT that need trace preprocessing).
    pub fn with_l2_engine(cfg: SystemConfig, engine: Box<dyn ReplacementEngine>) -> Self {
        let label = engine.name().to_string();
        System::with_l2_engine_labeled(cfg, engine, label, NoProbe)
    }
}

impl<P: Probe> System<P> {
    /// Builds an instrumented system: every subsystem streams events into
    /// `probe` (the L2 and MSHR get clones of the probe's sink handle so
    /// their events interleave with the core's in one stream).
    pub fn with_probe(cfg: SystemConfig, probe: P) -> Self {
        let engine = cfg.policy.build(cfg.l2);
        let label = cfg.policy.label();
        System::with_l2_engine_labeled(cfg, engine, label, probe)
    }

    /// Instrumented variant of [`System::with_l2_engine`].
    pub fn with_l2_engine_and_probe(
        cfg: SystemConfig,
        engine: Box<dyn ReplacementEngine>,
        probe: P,
    ) -> Self {
        let label = engine.name().to_string();
        System::with_l2_engine_labeled(cfg, engine, label, probe)
    }

    fn with_l2_engine_labeled(
        cfg: SystemConfig,
        engine: Box<dyn ReplacementEngine>,
        label: String,
        probe: P,
    ) -> Self {
        let l1 = cfg
            .l1
            .map(|g| CacheModel::new(g, Box::new(mlpsim_cache::lru::LruEngine::new())));
        let mut l2 = CacheModel::new(cfg.l2, engine);
        let mut mshr = Mshr::new(cfg.mem.mshr_entries);
        if P::ENABLED {
            // Only the L2 (the cache under study) is wired: L1 hit events
            // would dominate the stream without informing any report.
            l2.set_sink(probe.sink(), 2);
            mshr.attach_sink(probe.sink());
        }
        let sampler = cfg.sample_interval.map(Sampler::new);
        let mut ccl = Ccl::new(cfg.adders);
        // In stall-only accounting (footnote 4) the gate is opened just
        // for full-window stall spans; it starts closed.
        let gated_cost = cfg.cost_accounting == crate::config::CostAccounting::StallCyclesOnly;
        ccl.set_gate(!gated_cost);
        let icache = cfg.icache.map(|ic| {
            (
                CacheModel::new(ic.geometry, Box::new(mlpsim_cache::lru::LruEngine::new())),
                FetchWalker::new(ic.code_lines),
            )
        });
        let next_branch_at = cfg
            .wrong_path
            .map(|w| w.interval_insts.max(1))
            .unwrap_or(u64::MAX);
        // The attribution ledger rides the probe: it feeds `stall_attrib`/
        // `stall_span` events when telemetry is on, and its reconciliation
        // invariant is checked on every run under `--features invariants`.
        let attrib = (P::ENABLED || cfg!(feature = "invariants"))
            .then(|| AttribTracker::new(cfg.mem.mshr_entries));
        System {
            l1,
            icache,
            ifetch_ready_at: 0,
            ifetch_stall_cycles: 0,
            squashes: BinaryHeap::new(),
            dispatched_total: 0,
            next_branch_at,
            wrong_path_cursor: 0,
            wrong_path_injected: 0,
            wrong_path_mshr_misses: 0,
            prefetches_issued: 0,
            prefetches_promoted: 0,
            l2,
            mshr,
            ccl,
            gated_cost,
            mem: MemorySystem::new(cfg.mem),
            window: InstructionWindow::new(cfg.cpu.window),
            stbuf: StoreBuffer::new(cfg.cpu.store_buffer),
            now: 0,
            seq: 0,
            dispatched_this_cycle: 0,
            retired: 0,
            next_epoch: cfg.epoch_insts.max(1),
            cost_hist: CostHistogram::new(),
            deltas: DeltaTracker::new(),
            stall_cycles: 0,
            mem_stall_cycles: 0,
            stall_episodes: 0,
            last_retire_cycle: 0,
            miss_log: cfg.collect_miss_log.then(Vec::new),
            attrib,
            sampler,
            policy_label: label,
            cfg,
            probe,
        }
    }

    /// Runs the trace to completion and returns the results.
    pub fn run<'a, I>(mut self, trace: I) -> SimResult
    where
        I: IntoIterator<Item = &'a Access>,
    {
        if P::ENABLED {
            let ev = Event::RunStart {
                label: self.policy_label.clone(),
                policy: self.l2.policy_name().to_string(),
                cycle: self.now,
            };
            self.probe.emit(ev);
        }
        for access in trace {
            self.dispatch_gap(access.gap);
            self.dispatch_memory(access);
        }
        self.drain();
        self.finalize()
    }

    /// Dispatches `n` non-memory instructions.
    fn dispatch_gap(&mut self, n: u32) {
        // No profiler scope here: the exclusive work is a handful of
        // window pushes, and the expensive paths it can hit (I-fetch,
        // window-full advances) are scoped phases of their own. Scoping
        // every gap dispatch would double the closed-gate scope count
        // for nothing.
        if self.icache.is_some() {
            // Slow path: each instruction may trigger an I-fetch that
            // blocks dispatch.
            for _ in 0..n {
                self.fetch_one();
                self.ensure_dispatch_slot();
                self.window.push(WinEntry::compute(self.now + 1), self.now);
                self.dispatched_this_cycle += 1;
                self.dispatched_total += 1;
                self.maybe_mispredict();
            }
            return;
        }
        let mut remaining = n;
        while remaining > 0 {
            self.ensure_dispatch_slot();
            if self.dispatched_this_cycle == 0 && !self.cfg.legacy_stepping {
                let skipped = self.gap_fast_forward(remaining);
                if skipped > 0 {
                    remaining -= skipped;
                    continue;
                }
            }
            // `ensure_dispatch_slot` returned, so dispatched < width and
            // both the subtraction and the accumulate below are exact.
            let width_left = self.cfg.cpu.width.saturating_sub(self.dispatched_this_cycle);
            let burst = remaining.min(width_left).min(self.window.free() as u32);
            self.window.push_computes(burst, self.now);
            self.dispatched_this_cycle = self.dispatched_this_cycle.saturating_add(burst);
            self.dispatched_total += u64::from(burst);
            self.maybe_mispredict();
            remaining -= burst;
        }
    }

    /// Fast-forwards `c` whole dispatch-and-retire cycles of a non-memory
    /// gap, returning the instructions consumed (0 when no jump is
    /// possible). Equivalent to the per-cycle path by construction:
    ///
    /// * Each skipped cycle replays the per-cycle schedule exactly: a
    ///   full group of `width` compute instructions is pushed during
    ///   cycle `now + g` (with `done = now + g + 1`), and the advance
    ///   into `now + g + 1` retires the oldest `width` entries. The
    ///   window's contents after the jump are byte-identical to what
    ///   per-cycle stepping would leave.
    /// * A pre-scan proves every retire group completes on schedule:
    ///   resident entry `i` must satisfy `done <= now + i/width + 1` (its
    ///   in-order retirement slot), so the jump works even when a
    ///   pending miss sits deeper in the window — the scan simply stops
    ///   the jump one cycle short of the first entry that would block.
    ///   Implicit entries (`done = push + 1`, pushed before this cycle)
    ///   and entries pushed *during* the jump always meet their slots, so
    ///   only the sparse explicit entries need checking.
    /// * When the window brushes exactly full at each cycle end
    ///   (`free == width`), the per-cycle path additionally checks the
    ///   head for a stall at the end of cycle `now + g`, where the head
    ///   is entry `g*width`. Those entries get the stricter deadline
    ///   `done <= now + i/width` (no `+1`), and the jump requires
    ///   `len >= width` so jump-pushed entries never reach the head
    ///   while a cycle is still in flight (this also covers the
    ///   `capacity == width` empty-window shape, where a cycle's own
    ///   pushes become the full window's head with `done == now + 1`).
    /// * `c` stops strictly before every discrete event the per-cycle
    ///   loop would observe — the next MSHR fill, the next wrong-path
    ///   squash, an epoch or sampler boundary, a synthetic branch — so
    ///   the event cycle itself is reached by ordinary stepping and all
    ///   policy/CCL/ledger state mutations keep their exact order and
    ///   timestamps.
    fn gap_fast_forward(&mut self, remaining: u32) -> u32 {
        debug_assert!(self.icache.is_none() && self.dispatched_this_cycle == 0);
        let width = self.cfg.cpu.width;
        let free = self.window.free() as u32;
        let len = self.window.len() as u32;
        // `free == width` means every skipped cycle ends with the window
        // exactly full, exposing a head-stall check the scan must honor.
        let brushes_full = free == width;
        if remaining < width || free < width || (brushes_full && len < width) {
            return 0;
        }
        let wu = u64::from(width);
        let mut c = u64::from(remaining / width);
        // Stop strictly before every discrete event; `retired < next_epoch`
        // and `retired < next_boundary` are maintained by `after_retire`,
        // `dispatched_total < next_branch_at` by `maybe_mispredict`.
        c = c.min((self.next_epoch - 1 - self.retired) / wu);
        if let Some(s) = &self.sampler {
            c = c.min((s.next_boundary() - 1).saturating_sub(self.retired) / wu);
        }
        c = c.min((self.next_branch_at - 1).saturating_sub(self.dispatched_total) / wu);
        if let Some((_, done)) = self.mshr.next_completion() {
            c = c.min(done.saturating_sub(self.now + 1));
        }
        if let Some(Reverse((at, _, _, _))) = self.squashes.peek() {
            c = c.min(at.saturating_sub(self.now + 1));
        }
        if c == 0 {
            return 0;
        }
        // Scan the in-order retirement schedule. Only explicit entries can
        // miss their slots; a violation at relative position `q` caps the
        // jump at `q / width` cycles: the groups before it are proven, and
        // the violator's own retire slot — or exactly-full head check — is
        // left to ordinary stepping.
        for (q, e) in self.window.explicit_from_head() {
            if q >= c * wu {
                break;
            }
            let head_checked = brushes_full && q.is_multiple_of(wu);
            let deadline = self
                .now
                .saturating_add(q / wu)
                .saturating_add(u64::from(!head_checked));
            if e.done > deadline {
                c = q / wu;
                break;
            }
        }
        if c == 0 {
            return 0;
        }
        self.window.fast_forward(c, width, self.now);
        let insts = c * wu;
        self.now = self.now.saturating_add(c);
        self.retired += insts;
        self.dispatched_total += insts;
        self.last_retire_cycle = self.now;
        u32::try_from(insts).expect("bounded by `remaining`, a u32")
    }

    /// Dispatches one memory instruction.
    fn dispatch_memory(&mut self, a: &Access) {
        mlpsim_telemetry::prof_scope!(CpuDispatch);
        self.fetch_one();
        self.ensure_dispatch_slot();
        let is_store = a.kind == AccessKind::Store;
        if is_store {
            while self.stbuf.is_full(self.now) {
                // Full store buffer back-pressures dispatch (Table 2).
                let t = self
                    .stbuf
                    .next_completion()
                    .expect("a full buffer has a completion")
                    .max(self.now + 1);
                self.advance_to(t);
                self.ensure_dispatch_slot();
            }
        }
        let line = LineAddr(a.line);
        let seq = self.seq;
        self.seq += 1;
        let (mem_done, l2_miss) = self.resolve_memory(line, is_store, seq);
        if is_store {
            // Stores retire immediately; the buffer owns the latency.
            self.stbuf.push(mem_done);
            self.window.push(WinEntry::compute(self.now + 1), self.now);
        } else {
            self.window.push(
                WinEntry {
                    done: mem_done,
                    l2_miss,
                    line: a.line,
                },
                self.now,
            );
        }
        self.dispatched_this_cycle += 1;
        self.dispatched_total += 1;
        self.maybe_mispredict();
    }

    /// Fires the synthetic mispredicted branch when its instruction count
    /// comes due.
    fn maybe_mispredict(&mut self) {
        while self.dispatched_total >= self.next_branch_at {
            let Some(wp) = self.cfg.wrong_path else {
                self.next_branch_at = u64::MAX;
                return;
            };
            self.next_branch_at = self.next_branch_at.saturating_add(wp.interval_insts.max(1));
            self.inject_wrong_path(wp);
        }
    }

    /// Issues one misprediction's worth of wrong-path loads: they pollute
    /// the caches and occupy memory resources as demand misses until the
    /// branch resolves.
    fn inject_wrong_path(&mut self, wp: crate::wrongpath::WrongPathConfig) {
        for _ in 0..wp.burst {
            let line = LineAddr(WRONG_PATH_BASE_LINE + self.wrong_path_cursor);
            self.wrong_path_cursor += 1;
            self.wrong_path_injected += 1;
            let seq = self.seq;
            if let Some(l1) = &mut self.l1 {
                l1.access(line, false, seq);
            }
            let r2 = self.l2.access(line, false, seq);
            if r2.hit {
                continue;
            }
            if let Some(id) = self.mshr.lookup(line) {
                // Wrong-path merges never promote: a speculative touch is
                // no evidence the line is wanted.
                self.mshr.merge(id);
                if P::ENABLED {
                    self.probe.emit(Event::MshrMerge {
                        cycle: self.now,
                        line: line.0,
                        promoted: false,
                        live: self.mshr.len() as u64,
                    });
                }
                continue;
            }
            if let Some(ev) = r2.evicted {
                if ev.dirty {
                    self.mem.writeback(ev.line, self.now);
                }
            }
            if self.mshr.is_full() {
                // Wrong-path requests yield to structural hazards rather
                // than stalling the machine.
                continue;
            }
            let done = self.mem.request_fill(line, self.now);
            self.ccl.advance(&mut self.mshr, self.now);
            let id = self
                .mshr
                .allocate(line, self.now, done, true)
                .expect("fullness checked above");
            self.note_mshr_alloc(id, line);
            self.wrong_path_mshr_misses += 1;
            self.squashes.push(Reverse((
                self.now.saturating_add(wp.resolve_cycles),
                id.0,
                line.0,
                self.now,
            )));
        }
    }

    /// Resolves a memory access through the hierarchy; returns the data-
    /// ready cycle and whether it was (or merged into) an L2 miss.
    fn resolve_memory(&mut self, line: LineAddr, is_store: bool, seq: u64) -> (u64, bool) {
        let l1_lat = if self.l1.is_some() {
            self.cfg.cpu.l1_hit_cycles
        } else {
            0
        };
        if let Some(l1) = &mut self.l1 {
            let r = l1.access(line, is_store, seq);
            if r.hit {
                let done = self.now.saturating_add(l1_lat);
                // A tag hit on a line whose fill is still in flight is a
                // delayed hit: data arrives with the outstanding miss.
                if let Some(id) = self.mshr.lookup(line) {
                    self.merge_into(id);
                    return (self.mshr.entry(id).done_cycle.max(done), true);
                }
                return (done, false);
            }
            // L1 victim writebacks into the (inclusive-by-construction) L2
            // are hits that do not change L2 replacement state materially;
            // they are elided (see DESIGN.md).
        }
        let base = self.now.saturating_add(l1_lat);
        self.resolve_l2(line, is_store, seq, base)
    }

    /// Resolves an access at the L2 (data misses from the L1 path,
    /// instruction misses from the fetch path); returns the data-ready
    /// cycle and whether it was (or merged into) an L2 miss.
    fn resolve_l2(&mut self, line: LineAddr, is_store: bool, seq: u64, base: u64) -> (u64, bool) {
        let r2 = self.l2.access(line, is_store, seq);
        if r2.hit {
            let done = base.saturating_add(self.cfg.cpu.l2_hit_cycles);
            if let Some(id) = self.mshr.lookup(line) {
                self.merge_into(id);
                return (self.mshr.entry(id).done_cycle.max(done), true);
            }
            return (done, false);
        }
        // A tag miss on a still-in-flight line (the line was evicted while
        // outstanding): merge rather than re-request.
        if let Some(id) = self.mshr.lookup(line) {
            self.merge_into(id);
            return (self.mshr.entry(id).done_cycle, true);
        }
        if let Some(ev) = r2.evicted {
            if ev.dirty {
                self.mem.writeback(ev.line, self.now);
            }
        }
        // Allocate an MSHR entry, stalling on structural hazard.
        while self.mshr.is_full() {
            let (_, done) = self.mshr.next_completion().expect("full MSHR has entries");
            self.advance_to(done.max(self.now + 1));
        }
        // The request leaves for memory at dispatch: tag lookup overlaps
        // request initiation, so an isolated miss spends exactly the
        // paper's 444 cycles in the MSHR.
        let issue = self.now;
        let done = self.mem.request_fill(line, issue);
        // Charge the interval up to now at the old occupancy, then admit
        // the new demand miss (Algorithm 1's init_mlp_cost).
        self.ccl.advance(&mut self.mshr, self.now);
        let id = self
            .mshr
            .allocate(line, self.now, done, true)
            .expect("an MSHR slot was freed above");
        self.note_mshr_alloc(id, line);
        self.issue_prefetches(line, seq);
        (done, true)
    }

    /// Merges a request into an in-flight MSHR entry (promoting prefetch
    /// entries to demand status) and emits one `mshr_merge` event.
    fn merge_into(&mut self, id: mlpsim_mem::MshrId) {
        self.mshr.merge(id);
        let promoted = !self.mshr.entry(id).is_demand;
        self.promote_if_prefetch(id);
        if P::ENABLED {
            let ev = {
                let e = self.mshr.entry(id);
                Event::MshrMerge {
                    cycle: self.now,
                    line: e.line.0,
                    promoted,
                    live: self.mshr.len() as u64,
                }
            };
            self.probe.emit(ev);
        }
    }

    /// Promotes a merged-into MSHR entry to demand status (a prefetch or
    /// squashed wrong-path line that turned out to be wanted). The `N` of
    /// Algorithm 1 grows from this point on.
    fn promote_if_prefetch(&mut self, id: mlpsim_mem::MshrId) {
        if !self.mshr.entry(id).is_demand {
            // Accrue the pre-promotion interval at the old occupancy.
            self.ccl.advance(&mut self.mshr, self.now);
            self.mshr.promote_to_demand(id);
            self.prefetches_promoted += 1;
        }
    }

    /// Issues next-line prefetches behind a demand miss to `line`.
    fn issue_prefetches(&mut self, line: LineAddr, seq: u64) {
        let Some(pf) = self.cfg.prefetch else { return };
        for d in 1..=pf.degree as u64 {
            // Next-line targets past the top of the address space do not
            // exist; stop rather than wrap (targets are monotone in `d`,
            // so every later one would overflow too).
            let Some(raw) = line.0.checked_add(d) else {
                break;
            };
            let target = LineAddr(raw);
            if self.l2.contains(target) || self.mshr.lookup(target).is_some() {
                continue;
            }
            if self.mshr.is_full() {
                break; // prefetches always yield to structural pressure
            }
            let done = self.mem.request_fill(target, self.now);
            self.ccl.advance(&mut self.mshr, self.now);
            let id = self
                .mshr
                .allocate(target, self.now, done, false)
                .expect("fullness checked above");
            self.note_mshr_alloc(id, target);
            if let Some(ev) = self.l2.insert_prefetched(target, seq) {
                if ev.dirty {
                    self.mem.writeback(ev.line, self.now);
                }
            }
            self.prefetches_issued += 1;
        }
    }

    /// Blocks until an instruction may dispatch this cycle.
    fn ensure_dispatch_slot(&mut self) {
        loop {
            if self.now < self.ifetch_ready_at {
                // Frontend stall: the next instructions are still being
                // fetched. The window may drain meanwhile.
                let target = self.ifetch_ready_at.max(self.now + 1);
                // `target > now` by the max above: the subtraction is exact.
                let waited = target.wrapping_sub(self.now);
                self.ifetch_stall_cycles = self.ifetch_stall_cycles.saturating_add(waited);
                self.advance_to(target);
                continue;
            }
            if self.dispatched_this_cycle < self.cfg.cpu.width && !self.window.is_full() {
                return;
            }
            self.step(false);
        }
    }

    /// Advances the fetch walker for one dispatched instruction, resolving
    /// an I-cache access at line boundaries. I-misses block dispatch until
    /// the line arrives and count as demand misses (paper §3.1).
    fn fetch_one(&mut self) {
        let fetched = match &mut self.icache {
            None => return,
            Some((icache, walker)) => match walker.advance() {
                None => return,
                Some(raw_line) => {
                    let line = LineAddr(raw_line);
                    let hit = icache.access(line, false, walker.instructions()).hit;
                    (line, hit)
                }
            },
        };
        let (line, hit) = fetched;
        // L2-visible accesses use the same sequence space as data accesses
        // so seq-keyed engines (Belady's oracle) stay consistent.
        let seq = self.seq;
        if hit {
            // Sequential fetch hits are pipelined ahead of dispatch.
            if let Some(id) = self.mshr.lookup(line) {
                // Delayed hit on a still-in-flight I-line (possibly a
                // prefetch, which this demand fetch promotes).
                self.merge_into(id);
                self.ifetch_ready_at = self.ifetch_ready_at.max(self.mshr.entry(id).done_cycle);
            }
            return;
        }
        let hit_lat = self.cfg.icache.map(|c| c.hit_cycles).unwrap_or(2);
        let (done, _l2_miss) = self.resolve_l2(line, false, seq, self.now.saturating_add(hit_lat));
        self.ifetch_ready_at = self.ifetch_ready_at.max(done);
    }

    /// Advances to the next cycle where progress is possible, accounting
    /// full-window stalls. `draining` marks the post-trace phase, where a
    /// pending head stalls the machine even though the window is no longer
    /// full (no more instructions exist to dispatch).
    fn step(&mut self, draining: bool) {
        let mut target = self.now + 1;
        let mut memory_stall_span = false;
        let mut span_head_line = 0u64;
        if self.window.is_full() || draining {
            if let Some(head) = self.window.stalled_head(self.now) {
                // A stalled head completes strictly after `now`, so the
                // subtraction is exact.
                let stall = head.done.wrapping_sub(self.now);
                self.stall_cycles = self.stall_cycles.saturating_add(stall);
                if head.l2_miss {
                    self.mem_stall_cycles = self.mem_stall_cycles.saturating_add(stall);
                    memory_stall_span = true;
                    span_head_line = head.line;
                    if stall >= LONG_STALL_CYCLES {
                        self.stall_episodes += 1;
                        if P::ENABLED {
                            self.probe.emit(Event::Stall {
                                cycle: self.now,
                                len: stall,
                            });
                        }
                    }
                }
                target = head.done;
            }
        }
        if memory_stall_span {
            self.open_stall_span(span_head_line);
        }
        if self.gated_cost && memory_stall_span {
            // Footnote 4: accrue cost only across the stall span.
            self.ccl.advance(&mut self.mshr, self.now); // settle pre-span (gate closed)
            self.ccl.set_gate(true);
            self.advance_to(target);
            self.ccl.advance(&mut self.mshr, self.now); // settle the span itself
            self.ccl.set_gate(false);
        } else {
            self.advance_to(target);
        }
        if memory_stall_span {
            self.close_stall_span();
        }
    }

    /// Captures a fresh MSHR entry's ledger identity — the L2 set its line
    /// maps to and the policy governing that set right now — so stall
    /// cycles attributed to the entry land in the right ledger bucket.
    fn note_mshr_alloc(&mut self, id: mlpsim_mem::MshrId, line: LineAddr) {
        if self.attrib.is_none() {
            return;
        }
        let set = self.l2.geometry().set_index(line);
        let policy = self.l2.policy_for_set(set);
        if let Some(tracker) = &mut self.attrib {
            tracker.on_alloc(id.0, u64::from(set), policy);
        }
    }

    /// Opens an attribution span for the memory stall beginning now, keyed
    /// by the window-head miss's line/set/policy.
    fn open_stall_span(&mut self, line: u64) {
        if self.attrib.is_none() {
            return;
        }
        let set = self.l2.geometry().set_index(LineAddr(line));
        let policy = self.l2.policy_for_set(set);
        if let Some(tracker) = &mut self.attrib {
            tracker.open(self.now, line, u64::from(set), policy, &self.mshr);
        }
    }

    /// Closes the attribution span at the (post-advance) current cycle:
    /// charges the tail interval, folds any zero-demand residual into the
    /// span head's key, and mirrors both as events when a probe is on.
    fn close_stall_span(&mut self) {
        let Some(tracker) = &mut self.attrib else {
            return;
        };
        tracker.charge(&self.mshr, self.now);
        let residual = tracker.residual_charge();
        let span = tracker.close(self.now, 0);
        if P::ENABLED {
            if let Some(c) = residual {
                // The residual lands under the span's resolved bucket (the
                // head's cost_q when its entry freed mid-span).
                self.probe.emit(Event::StallAttrib {
                    cycle: self.now,
                    line: c.line,
                    set: c.set,
                    cost_q: span.cost_q,
                    policy: span.policy.clone(),
                    cycles: c.cycles,
                });
            }
            self.probe.emit(span.to_event());
        }
    }

    /// Moves time to `t`: services fills due by then, retires, samples.
    fn advance_to(&mut self, t: u64) {
        // Profiler builds only: advance is called on every cycle bump but
        // only does real work when the window head retires or a fill is
        // due — scope those calls, not the time-keeping no-ops, so the
        // closed-gate scope count stays inside the ≤2% envelope.
        #[cfg(feature = "prof")]
        let _advance_scope = (mlpsim_telemetry::prof::is_enabled()
            && (self.window.head_ready_by(t)
                || self.mshr.next_completion().is_some_and(|(_, d)| d <= t)))
        .then(|| mlpsim_telemetry::prof::scope(mlpsim_telemetry::prof::Phase::CpuAdvance));
        debug_assert!(t > self.now, "time must advance");
        self.process_fills_upto(t);
        self.now = t;
        self.dispatched_this_cycle = 0;
        let retired = self.window.retire_ready(self.now, self.cfg.cpu.width);
        self.retired += u64::from(retired);
        if retired > 0 {
            self.after_retire();
        }
    }

    /// Services every outstanding miss whose fill arrives at or before `t`,
    /// recording its MLP-based cost (Algorithm 1's read-out point: "When a
    /// miss is serviced, the mlp_cost field in the MSHR represents the
    /// MLP-based cost of that miss").
    fn process_fills_upto(&mut self, t: u64) {
        // Profiler builds only: most calls find nothing due (this runs on
        // every cycle advance), so enter the MSHR phase only when a fill
        // or squash will actually be serviced — the scope count tracks
        // real servicing work, not the polling rate.
        #[cfg(feature = "prof")]
        if mlpsim_telemetry::prof::is_enabled() {
            let fill_due = self.mshr.next_completion().is_some_and(|(_, d)| d <= t);
            let squash_due = self
                .squashes
                .peek()
                .is_some_and(|Reverse((at, _, _, _))| *at <= t);
            if !fill_due && !squash_due {
                return;
            }
        }
        mlpsim_telemetry::prof_scope!(Mshr);
        loop {
            // Wrong-path resolutions and fills are interleaved in time
            // order so the CCL's clock stays monotone.
            let fill_at = self.mshr.next_completion().map(|(_, d)| d);
            let squash_at = self.squashes.peek().map(|Reverse((at, _, _, _))| *at);
            let take_squash = match (fill_at, squash_at) {
                (_, None) => false,
                (None, Some(s)) => s <= t,
                (Some(f), Some(s)) => s <= t && s <= f,
            };
            if take_squash {
                let Reverse((at, slot, raw_line, alloc)) = self.squashes.pop().expect("peeked");
                let id = mlpsim_mem::MshrId(slot);
                if let Some(e) = self.mshr.get(id) {
                    // Still the same miss, and no correct-path access
                    // merged into it: confirm wrong-path and demote.
                    if e.line.0 == raw_line && e.alloc_cycle == alloc && e.merged == 0 {
                        self.ccl.advance(&mut self.mshr, at);
                        if let Some(tracker) = &mut self.attrib {
                            // Freeze the attribution interval at the same
                            // occupancy boundary the CCL sees.
                            tracker.charge(&self.mshr, at);
                        }
                        self.mshr.demote_from_demand(id);
                    }
                }
                continue;
            }
            let Some((id, done)) = self.mshr.next_completion() else {
                break;
            };
            if done > t {
                break;
            }
            self.ccl.advance(&mut self.mshr, done);
            if let Some(tracker) = &mut self.attrib {
                tracker.charge(&self.mshr, done);
                let (eline, ecost) = {
                    let e = self.mshr.entry(id);
                    (e.line.0, e.mlp_cost)
                };
                // Every free flushes: the entry's cost_q is final here, and
                // clearing the slot's tag keeps reuse sound.
                let flushed = tracker.flush_slot(id.0, eline, ecost);
                if P::ENABLED {
                    if let Some(c) = flushed {
                        self.probe.emit(Event::StallAttrib {
                            cycle: done,
                            line: c.line,
                            set: c.set,
                            cost_q: c.cost_q,
                            policy: c.policy.to_string(),
                            cycles: c.cycles,
                        });
                    }
                }
            }
            let entry = self.mshr.free(id);
            if entry.is_demand {
                let cost = entry.mlp_cost;
                let q = quantize(cost);
                self.cost_hist.record(cost);
                self.deltas.observe(entry.line.0, cost);
                self.l2.record_serviced_cost(entry.line, q);
                if P::ENABLED {
                    self.probe.emit(Event::Serviced {
                        line: entry.line.0,
                        cycle: done,
                        cost,
                        cost_q: q,
                    });
                }
                if let Some(s) = &mut self.sampler {
                    s.record_miss_cost(q);
                }
                if let Some(log) = &mut self.miss_log {
                    // Bounded: see `MISS_LOG_CAP` in `config.rs`.
                    if log.len() < crate::config::MISS_LOG_CAP {
                        log.push((entry.line.0, cost));
                    }
                }
            }
        }
    }

    fn after_retire(&mut self) {
        self.last_retire_cycle = self.now;
        while self.retired >= self.next_epoch {
            self.l2.on_epoch();
            self.next_epoch += self.cfg.epoch_insts.max(1);
        }
        let misses = self.l2.stats().misses;
        let new_samples = match &mut self.sampler {
            Some(s) => s.tick(self.retired, self.now, misses),
            None => 0,
        };
        if P::ENABLED && new_samples > 0 {
            let fresh: Vec<crate::timeseries::Sample> = {
                let all = self
                    .sampler
                    .as_ref()
                    .expect("sampler just ticked")
                    .samples();
                all[all.len() - new_samples..].to_vec()
            };
            for sm in fresh {
                self.probe.emit(Event::Sample {
                    instructions: sm.instructions,
                    cycle: self.now,
                    ipc: sm.ipc,
                    mpki: sm.mpki,
                    avg_cost_q: sm.avg_cost_q,
                });
            }
        }
    }

    /// Retires everything left in the window after the trace ends.
    fn drain(&mut self) {
        while !self.window.is_empty() {
            self.step(true);
        }
        // Settle any fills still in flight (stores in the buffer) so their
        // costs are recorded.
        if let Some((_, last)) = self
            .mshr
            .iter()
            .map(|(id, e)| (id, e.done_cycle))
            .max_by_key(|&(_, d)| d)
        {
            self.advance_to(last.max(self.now + 1));
        }
    }

    fn finalize(mut self) -> SimResult {
        let stall_ledger = self.attrib.take().map(|t| t.finalize(&self.mshr));
        #[cfg(feature = "invariants")]
        if let Some(ledger) = &stall_ledger {
            // The whole point of exact apportionment: the ledger is a
            // partition of the memory-stall cycles, not an estimate.
            crate::invariant!(
                ledger.total() == self.mem_stall_cycles,
                "attributed stall cycles ({}) must reconcile exactly with mem_stall_cycles ({})",
                ledger.total(),
                self.mem_stall_cycles
            );
        }
        if P::ENABLED {
            let ev = Event::RunEnd {
                label: self.policy_label.clone(),
                policy: self.l2.policy_name().to_string(),
                cycle: self.last_retire_cycle,
                instructions: self.retired,
                l2_misses: self.l2.stats().misses,
                peak_mlp: self.mshr.peak_demand() as u64,
                mem_stall_cycles: self.mem_stall_cycles,
            };
            self.probe.emit(ev);
            self.probe.sink().flush();
        }
        let policy_debug = self.l2.engine_debug_state();
        SimResult {
            policy: self.policy_label,
            instructions: self.retired,
            // Execution time ends at the last retirement; the post-drain
            // settling of in-flight store fills is bookkeeping, not time
            // the program ran for.
            cycles: self.last_retire_cycle,
            l1: self.l1.as_ref().map(|c| *c.stats()).unwrap_or_default(),
            icache: self
                .icache
                .as_ref()
                .map(|(c, _)| *c.stats())
                .unwrap_or_default(),
            ifetch_stall_cycles: self.ifetch_stall_cycles,
            wrong_path_accesses: self.wrong_path_injected,
            wrong_path_misses: self.wrong_path_mshr_misses,
            prefetches_issued: self.prefetches_issued,
            prefetches_promoted: self.prefetches_promoted,
            l2: *self.l2.stats(),
            l2_compulsory: self.l2.compulsory_misses(),
            mem: self.mem.stats(),
            cost_hist: self.cost_hist,
            deltas: *self.deltas.stats(),
            full_window_stall_cycles: self.stall_cycles,
            mem_stall_cycles: self.mem_stall_cycles,
            stall_episodes: self.stall_episodes,
            peak_mlp: self.mshr.peak_demand(),
            samples: self.sampler.map(Sampler::into_samples).unwrap_or_default(),
            miss_log: self.miss_log.unwrap_or_default(),
            stall_ledger,
            policy_debug,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use mlpsim_trace::record::Trace;

    fn baseline() -> SystemConfig {
        SystemConfig::baseline(PolicyKind::Lru)
    }

    fn run(cfg: SystemConfig, trace: &Trace) -> SimResult {
        System::new(cfg).run(trace.iter())
    }

    #[test]
    fn pure_compute_approaches_full_width() {
        // One access preceded by a huge gap: IPC should approach 8.
        let trace = Trace::from_accesses(vec![Access::load(0, 80_000)]);
        let r = run(baseline(), &trace);
        assert!(
            r.ipc() > 7.0,
            "IPC {} should be near the 8-wide limit",
            r.ipc()
        );
    }

    #[test]
    fn isolated_miss_costs_444_cycles() {
        let trace = Trace::from_accesses(vec![
            Access::load(0, 400),
            Access::load(1 << 20, 400), // different set/bank, isolated
            Access::load(2 << 20, 400),
        ]);
        let r = run(baseline(), &trace);
        assert_eq!(r.l2.misses, 3);
        // All three missed in isolation: mean cost = 444.
        assert!(
            (r.mean_cost() - 444.0).abs() < 1.0,
            "mean {}",
            r.mean_cost()
        );
        assert_eq!(r.cost_hist.bin(7), 3);
        assert_eq!(r.peak_mlp, 1);
        assert_eq!(r.stall_episodes, 3);
    }

    #[test]
    fn parallel_misses_split_the_cost() {
        // Four loads in one window span to distinct lines/banks.
        let trace = Trace::from_accesses(vec![
            Access::load(0, 300),
            Access::load((1 << 20) + 1, 2),
            Access::load((2 << 20) + 2, 2),
            Access::load((3 << 20) + 3, 2),
        ]);
        let r = run(baseline(), &trace);
        assert_eq!(r.l2.misses, 4);
        assert_eq!(r.peak_mlp, 4);
        // Cost per miss ≈ 444/4 + bus staggering; firmly in bins 1-2.
        assert!(
            r.mean_cost() > 80.0 && r.mean_cost() < 200.0,
            "mean {}",
            r.mean_cost()
        );
        // One long stall episode for the whole group, not four.
        assert_eq!(r.stall_episodes, 1);
    }

    #[test]
    fn duplicate_access_merges_into_one_miss() {
        let trace = Trace::from_accesses(vec![
            Access::load(7, 10),
            Access::load(7, 2), // same line while in flight
            Access::load(7, 2),
        ]);
        let r = run(baseline(), &trace);
        // L1 tags hold the line after the first access: delayed hits.
        assert_eq!(r.l2.misses, 1);
        assert_eq!(r.cost_hist.count(), 1);
        assert_eq!(r.mem.fills, 1, "exactly one memory request");
    }

    #[test]
    fn stores_do_not_block_retirement() {
        // Store misses followed by plenty of compute: the window should
        // never stall on a store.
        let trace = Trace::from_accesses(vec![
            Access::store(5 << 20, 10),
            Access::store((6 << 20) + 1, 4000),
        ]);
        let r = run(baseline(), &trace);
        assert!(
            r.ipc() > 5.0,
            "store miss must not serialize, IPC {}",
            r.ipc()
        );
        assert_eq!(r.l2.misses, 2);
        assert_eq!(r.stall_episodes, 0);
    }

    #[test]
    fn l2_hits_are_fast() {
        // Touch a line, let it settle, touch it again: second access hits
        // L1 (or L2) with no new miss.
        let trace = Trace::from_accesses(vec![Access::load(3, 100), Access::load(3, 2000)]);
        let r = run(baseline(), &trace);
        assert_eq!(r.l2.misses, 1);
        assert_eq!(r.l1.hits + r.l2.hits, 1);
    }

    #[test]
    fn no_l1_sends_everything_to_l2() {
        let mut cfg = baseline();
        cfg.l1 = None;
        let trace = Trace::from_accesses(vec![Access::load(1, 10), Access::load(1, 600)]);
        let r = run(cfg, &trace);
        assert_eq!(r.l1.accesses(), 0);
        assert_eq!(r.l2.accesses(), 2);
        assert_eq!(r.l2.hits, 1);
    }

    #[test]
    fn deltas_track_successive_misses() {
        // Make line 9 miss twice with very different parallelism: once
        // isolated, once with seven companions.
        let evictor: Vec<Access> = (0..40u64)
            .map(|i| Access::load(9 + 1024 * (1 + i), 200))
            .collect();
        let mut v = vec![Access::load(9, 300)];
        v.extend(evictor); // push line 9 out of L1 and L2 set
        v.push(Access::load(9, 300)); // second isolated miss... same cost
        let trace = Trace::from_accesses(v);
        let r = run(baseline(), &trace);
        assert!(r.deltas.count() >= 1, "line 9 missed twice");
        // Both misses isolated → tiny delta.
        assert!(r.deltas.pct_lt60() > 0.0);
    }

    #[test]
    fn sampler_emits_interval_series() {
        let mut cfg = baseline();
        cfg.sample_interval = Some(1_000);
        let trace: Trace = (0..200u64).map(|i| Access::load(i * 37, 100)).collect();
        let r = System::new(cfg).run(trace.iter());
        assert!(!r.samples.is_empty());
        let last = r.samples.last().unwrap();
        assert!(last.instructions <= r.instructions);
        assert!(last.ipc > 0.0);
    }

    #[test]
    fn mshr_full_is_survived() {
        // 40 distinct-line loads in one window span exceed the 32-entry
        // MSHR: the system must stall and recover, not panic.
        let trace: Trace = (0..40u64).map(|i| Access::load(i << 12, 2)).collect();
        let r = run(baseline(), &trace);
        assert_eq!(r.l2.misses, 40);
        assert!(r.peak_mlp <= 32);
    }

    #[test]
    fn instructions_match_trace() {
        let trace: Trace = (0..50u64).map(|i| Access::load(i, 13)).collect();
        let expected = trace.instructions();
        let r = run(baseline(), &trace);
        assert_eq!(r.instructions, expected);
    }

    #[test]
    fn miss_log_records_every_serviced_demand_miss() {
        let mut cfg = baseline();
        cfg.collect_miss_log = true;
        let trace: Trace = (0..30u64).map(|i| Access::load(i * 4096, 200)).collect();
        let r = System::new(cfg).run(trace.iter());
        assert_eq!(r.miss_log.len() as u64, r.l2.misses);
        for &(line, cost) in &r.miss_log {
            assert!(cost > 0.0);
            assert!(line % 4096 == 0);
        }
    }

    #[test]
    fn dirty_evictions_generate_writebacks_to_memory() {
        // Stores to 17 lines of one L2 set (16-way) force a dirty eviction.
        let trace: Trace = (0..17u64).map(|i| Access::store(i * 1024, 600)).collect();
        let r = run(baseline(), &trace);
        assert!(r.l2.writebacks >= 1);
        assert_eq!(r.mem.writebacks, r.l2.writebacks);
    }

    #[test]
    fn epoch_hook_reaches_the_engine() {
        // A rand-dynamic SBAR reselects leader sets on every epoch; with a
        // small epoch interval this must not disturb correctness.
        use mlpsim_core::leader::SelectionPolicy;
        use mlpsim_core::sbar::SbarConfig;
        let mut cfg = baseline();
        cfg.policy = PolicyKind::Sbar(SbarConfig {
            selection: SelectionPolicy::RandDynamic,
            ..SbarConfig::paper_default()
        });
        cfg.epoch_insts = 1_000;
        let trace: Trace = (0..400u64).map(|i| Access::load(i * 7, 50)).collect();
        let r = System::new(cfg).run(trace.iter());
        assert_eq!(r.instructions, trace.instructions());
        assert!(r.policy_debug.is_some(), "SBAR exposes its PSEL state");
    }

    #[test]
    fn policy_debug_is_none_for_plain_policies() {
        let trace = Trace::from_accesses(vec![Access::load(0, 10)]);
        let r = run(baseline(), &trace);
        assert!(r.policy_debug.is_none());
    }

    #[test]
    fn in_flight_line_evicted_from_tags_still_merges() {
        // Line A misses; 17 conflicting misses evict A's tag while A is
        // still in flight; a re-access to A must merge, not re-request.
        let mut cfg = baseline();
        cfg.l1 = None; // expose the L2 directly
        let mut v = vec![Access::load(0, 2)];
        // 16 more lines in L2 set 0, all within A's 444-cycle flight time.
        v.extend((1..=16u64).map(|i| Access::load(i * 1024, 2)));
        v.push(Access::load(0, 2)); // back to A
        let trace = Trace::from_accesses(v);
        let r = System::new(cfg).run(trace.iter());
        // 17 distinct lines requested; the second touch of A merged.
        assert_eq!(r.mem.fills, 17);
        assert_eq!(r.l2.misses, 18, "tag re-miss counted, but no second fill");
    }

    #[test]
    fn small_code_loop_warms_the_icache() {
        use crate::icache::IcacheConfig;
        let mut cfg = baseline();
        cfg.icache = Some(IcacheConfig::baseline(8)); // 8-line kernel
        let trace: Trace = (0..200u64).map(|i| Access::load(i % 4, 40)).collect();
        let r = System::new(cfg).run(trace.iter());
        assert!(r.icache.accesses() > 0);
        // 8 compulsory I-misses, everything else hits.
        assert_eq!(r.icache.misses, 8);
        assert!(r.icache.hits > 100);
    }

    #[test]
    fn huge_code_footprint_thrashes_the_icache_and_slows_dispatch() {
        use crate::icache::IcacheConfig;
        let trace: Trace = (0..300u64).map(|i| Access::load(i % 4, 60)).collect();
        let small = {
            let mut cfg = baseline();
            cfg.icache = Some(IcacheConfig::baseline(8));
            System::new(cfg).run(trace.iter())
        };
        let huge = {
            let mut cfg = baseline();
            // 1024 lines = 64 KB of code against a 16 KB I-cache.
            cfg.icache = Some(IcacheConfig::baseline(1024));
            System::new(cfg).run(trace.iter())
        };
        assert!(huge.icache.misses > small.icache.misses * 10);
        assert!(huge.ifetch_stall_cycles > small.ifetch_stall_cycles);
        assert!(huge.ipc() < small.ipc(), "fetch stalls must cost time");
        // Instruction misses are demand misses: they appear in the cost
        // histogram alongside data misses.
        assert!(huge.cost_hist.count() > small.cost_hist.count());
    }

    #[test]
    fn next_line_prefetch_turns_stream_misses_into_hits() {
        use crate::prefetch::PrefetchConfig;
        // A sequential stream with isolating gaps: without prefetch every
        // line misses at full cost; degree-2 prefetching covers most.
        let trace: Trace = (0..300u64).map(|i| Access::load(1_000 + i, 300)).collect();
        let plain = run(baseline(), &trace);
        let mut cfg = baseline();
        cfg.prefetch = Some(PrefetchConfig { degree: 2 });
        let pf = System::new(cfg).run(trace.iter());
        assert!(pf.prefetches_issued > 0);
        assert!(
            pf.l2.misses < plain.l2.misses / 2,
            "{} vs {}",
            pf.l2.misses,
            plain.l2.misses
        );
        assert!(
            pf.ipc() > plain.ipc() * 1.5,
            "{} vs {}",
            pf.ipc(),
            plain.ipc()
        );
    }

    #[test]
    fn demand_merge_promotes_an_inflight_prefetch() {
        use crate::prefetch::PrefetchConfig;
        // Miss line A (prefetching A+1), then touch A+1 while its prefetch
        // is still in flight: the entry must be promoted and the access
        // must complete with the prefetch's fill, not a fresh request.
        let mut cfg = baseline();
        cfg.prefetch = Some(PrefetchConfig::next_line());
        let trace = Trace::from_accesses(vec![
            Access::load(5_000, 200),
            Access::load(5_001, 10), // inside the prefetch's flight time
            Access::load(9_999_999, 4_000),
        ]);
        let r = System::new(cfg).run(trace.iter());
        assert_eq!(r.prefetches_issued, 2); // behind lines 5000 and 9999999
        assert_eq!(r.prefetches_promoted, 1);
        // Two demand fills + the unpromoted prefetch; the promoted one is
        // shared with the demand access.
        assert_eq!(r.mem.fills, 4);
    }

    #[test]
    fn prefetcher_never_requests_resident_or_inflight_lines() {
        use crate::prefetch::PrefetchConfig;
        let mut cfg = baseline();
        cfg.prefetch = Some(PrefetchConfig { degree: 4 });
        // Repeated walks over a tiny region: after warm-up everything is
        // resident and the prefetcher must go quiet.
        let mut v = Vec::new();
        for _ in 0..10 {
            for i in 0..8u64 {
                v.push(Access::load(100 + i, 200));
            }
        }
        let trace = Trace::from_accesses(v);
        let r = System::new(cfg).run(trace.iter());
        // First pass misses and prefetches; later passes are all hits.
        assert!(r.prefetches_issued <= 16, "got {}", r.prefetches_issued);
    }

    #[test]
    fn prefetch_targets_at_the_top_of_the_address_space_do_not_wrap() {
        use crate::prefetch::PrefetchConfig;
        // A demand miss to the last line of the address space has no
        // next-line successor; the prefetcher must stop there rather than
        // wrap to line 0 (which would pollute the cache with an unrelated
        // line and, before the overflow fix, panicked in debug builds).
        let mut cfg = baseline();
        cfg.prefetch = Some(PrefetchConfig { degree: 4 });
        let trace = Trace::from_accesses(vec![
            Access::load(u64::MAX, 200),
            Access::load(u64::MAX - 2, 200), // only MAX-1 and MAX remain above
            Access::load(0, 4_000),          // a wrapped prefetch would have hit
        ]);
        let r = System::new(cfg).run(trace.iter());
        // Behind MAX: nothing (every target overflows). Behind MAX-2: only
        // MAX-1 (MAX is resident, MAX+1 would overflow). Behind 0: the
        // usual four next lines.
        assert_eq!(r.prefetches_issued, 5);
        assert_eq!(r.l2.misses, 3, "line 0 must still demand-miss");
    }

    #[test]
    fn icache_disabled_keeps_the_fast_path_identical() {
        let trace: Trace = (0..100u64).map(|i| Access::load(i * 3, 25)).collect();
        let r = run(baseline(), &trace);
        assert_eq!(r.icache.accesses(), 0);
        assert_eq!(r.ifetch_stall_cycles, 0);
    }

    #[test]
    fn wrong_path_traffic_pollutes_but_is_not_demand_accounted() {
        use crate::wrongpath::WrongPathConfig;
        let trace: Trace = (0..200u64).map(|i| Access::load(i % 8, 100)).collect();
        let clean = run(baseline(), &trace);
        let mut cfg = baseline();
        cfg.wrong_path = Some(WrongPathConfig {
            interval_insts: 500,
            burst: 4,
            resolve_cycles: 15,
        });
        let noisy = System::new(cfg).run(trace.iter());
        assert!(noisy.wrong_path_accesses > 0);
        assert!(noisy.wrong_path_misses > 0);
        // Wrong-path fills hit memory...
        assert!(noisy.mem.fills > clean.mem.fills);
        // ...but demoted misses never enter the demand-cost histogram:
        // every recorded cost corresponds to a correct-path (or merged)
        // miss.
        assert!(noisy.cost_hist.count() < noisy.mem.fills);
        // Retirement is unaffected: the same instructions complete.
        assert_eq!(noisy.instructions, clean.instructions);
    }

    #[test]
    fn wrong_path_resolution_shrinks_demand_count_quickly() {
        use crate::wrongpath::WrongPathConfig;
        // Lonely correct-path isolated misses surrounded by wrong-path
        // bursts: their cost must stay near 444, because the wrong-path
        // companions stop diluting N after 15 cycles.
        let mut cfg = baseline();
        cfg.wrong_path = Some(WrongPathConfig {
            interval_insts: 400,
            burst: 8,
            resolve_cycles: 15,
        });
        let trace: Trace = (0..40u64).map(|i| Access::load(i << 13, 400)).collect();
        let r = System::new(cfg).run(trace.iter());
        // With dilution bounded to the 15-cycle resolution window, the
        // mean demand cost stays close to isolated (444), far above the
        // fully-diluted value (444/9 ≈ 49).
        assert!(r.mean_cost() > 350.0, "mean {}", r.mean_cost());
    }

    #[test]
    fn bank_conflicts_show_up_in_costs() {
        // Two simultaneous misses to the same DRAM bank serialize: the
        // second accrues far more cost than a clean pair would.
        let trace = Trace::from_accesses(vec![
            Access::load(0, 300),
            Access::load(32 << 12, 2), // same bank 0 (multiple of 32), different set
        ]);
        let r = run(baseline(), &trace);
        assert_eq!(r.mem.dram.bank_conflicts, 1);
        // Costs: first ≈ 444/2 + tail, second ≈ 222 + 400 extra alone.
        assert!(
            r.cost_hist.bin(7) >= 1,
            "the serialized miss lands in the top bucket"
        );
    }
}
