//! The instruction window: in-order retirement over out-of-order
//! completion.
//!
//! "For current instruction window sizes, instruction processing stalls
//! shortly after a long-latency miss occurs" (paper §3): when the oldest
//! instruction is an unserviced L2 miss, the window fills up and dispatch
//! stops — the *full-window stall* whose cycles the MLP-based cost model
//! apportions among concurrent misses.

use std::collections::VecDeque;

/// One in-flight instruction.
#[derive(Clone, Copy, Debug)]
pub struct WinEntry {
    /// Cycle at which the instruction is complete and may retire.
    pub done: u64,
    /// Whether this is a load waiting on an L2 miss (used to attribute
    /// full-window stalls to the memory system).
    pub l2_miss: bool,
    /// Block address the instruction is waiting on — meaningful only when
    /// `l2_miss` is set. Lets a full-window stall on this entry be
    /// attributed to the miss's L2 set (see `mlpsim-cpu::attrib`).
    pub line: u64,
}

impl WinEntry {
    /// An entry that completes at `done` without touching memory (or
    /// hitting everywhere): never the cause of a memory stall.
    pub fn compute(done: u64) -> Self {
        WinEntry {
            done,
            l2_miss: false,
            line: 0,
        }
    }
}

/// A fixed-capacity instruction window with in-order retirement.
///
/// # Example
///
/// ```
/// use mlpsim_cpu::window::{InstructionWindow, WinEntry};
/// let mut w = InstructionWindow::new(4);
/// w.push(WinEntry::compute(5));
/// w.push(WinEntry::compute(3));
/// // At cycle 4 the head (done=5) blocks retirement even though the
/// // younger instruction is complete: retirement is in-order.
/// assert_eq!(w.retire_ready(4, 8), 0);
/// assert_eq!(w.retire_ready(5, 8), 2);
/// ```
#[derive(Clone, Debug)]
pub struct InstructionWindow {
    slots: VecDeque<WinEntry>,
    capacity: usize,
}

impl InstructionWindow {
    /// Creates a window with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        InstructionWindow {
            slots: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether the window is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// Free entries.
    pub fn free(&self) -> usize {
        self.capacity - self.slots.len()
    }

    /// Dispatches one instruction into the window.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (callers must check [`is_full`]).
    ///
    /// [`is_full`]: InstructionWindow::is_full
    pub fn push(&mut self, entry: WinEntry) {
        assert!(!self.is_full(), "dispatch into a full window");
        self.slots.push_back(entry);
    }

    /// The oldest instruction, if any.
    pub fn head(&self) -> Option<&WinEntry> {
        self.slots.front()
    }

    /// Retires up to `max` instructions whose completion cycle is at or
    /// before `now`, in order; returns how many retired.
    pub fn retire_ready(&mut self, now: u64, max: u32) -> u32 {
        let mut retired = 0;
        while retired < max {
            match self.slots.front() {
                Some(e) if e.done <= now => {
                    self.slots.pop_front();
                    retired += 1;
                }
                _ => break,
            }
        }
        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(done: u64) -> WinEntry {
        WinEntry::compute(done)
    }

    #[test]
    fn in_order_retirement_blocks_on_head() {
        let mut w = InstructionWindow::new(8);
        w.push(e(100));
        for _ in 0..5 {
            w.push(e(1));
        }
        assert_eq!(w.retire_ready(50, 8), 0, "head not done");
        assert_eq!(w.retire_ready(100, 8), 6, "head done frees the rest");
        assert!(w.is_empty());
    }

    #[test]
    fn retirement_respects_width() {
        let mut w = InstructionWindow::new(32);
        for _ in 0..20 {
            w.push(e(1));
        }
        assert_eq!(w.retire_ready(10, 8), 8);
        assert_eq!(w.retire_ready(10, 8), 8);
        assert_eq!(w.retire_ready(10, 8), 4);
    }

    #[test]
    fn fullness_tracks_capacity() {
        let mut w = InstructionWindow::new(2);
        assert!(!w.is_full());
        w.push(e(1));
        w.push(e(2));
        assert!(w.is_full());
        assert_eq!(w.free(), 0);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn overfill_panics() {
        let mut w = InstructionWindow::new(1);
        w.push(e(1));
        w.push(e(2));
    }

    #[test]
    fn head_exposes_miss_flag() {
        let mut w = InstructionWindow::new(4);
        w.push(WinEntry {
            done: 500,
            l2_miss: true,
            line: 9,
        });
        assert!(w.head().unwrap().l2_miss);
        assert_eq!(w.head().unwrap().line, 9);
    }
}
