//! The instruction window: in-order retirement over out-of-order
//! completion.
//!
//! "For current instruction window sizes, instruction processing stalls
//! shortly after a long-latency miss occurs" (paper §3): when the oldest
//! instruction is an unserviced L2 miss, the window fills up and dispatch
//! stops — the *full-window stall* whose cycles the MLP-based cost model
//! apportions among concurrent misses.
//!
//! # Representation
//!
//! The overwhelming majority of window entries are *implicit*: plain
//! compute instructions (and stores, whose latency the store buffer owns)
//! that complete one cycle after dispatch and can never stall retirement.
//! Storing them individually would put a push and a pop on the hot path
//! of every simulated instruction, so the window keeps only:
//!
//! * cumulative lifetime push/pop counters (an entry's *position*),
//! * a sparse deque of *explicit* entries — anything whose completion is
//!   not `push_cycle + 1` (loads, delayed hits) or that must remember it
//!   was an L2 miss — keyed by position, and
//! * the cycle of the most recent push batch plus the position of that
//!   batch's first entry, which is exactly the state needed to decide
//!   whether an implicit entry is already complete: implicit entries from
//!   the current batch complete at `last_push_cycle + 1`; every older
//!   implicit entry completed at or before `last_push_cycle`.
//!
//! This makes pushes, pops, and head queries O(1), and lets the
//! event-driven core fast-forward whole dispatch-and-retire cycles in
//! O(explicit entries crossed) instead of O(instructions).
//!
//! Time handed to this structure must be monotone: `push` cycles never
//! decrease, and retirement/head queries never use a cycle older than the
//! most recent push (both are debug-asserted).

use std::collections::VecDeque;

/// One in-flight instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WinEntry {
    /// Cycle at which the instruction is complete and may retire.
    pub done: u64,
    /// Whether this is a load waiting on an L2 miss (used to attribute
    /// full-window stalls to the memory system).
    pub l2_miss: bool,
    /// Block address the instruction is waiting on — meaningful only when
    /// `l2_miss` is set. Lets a full-window stall on this entry be
    /// attributed to the miss's L2 set (see `mlpsim-cpu::attrib`).
    pub line: u64,
}

impl WinEntry {
    /// An entry that completes at `done` without touching memory (or
    /// hitting everywhere): never the cause of a memory stall.
    pub fn compute(done: u64) -> Self {
        WinEntry {
            done,
            l2_miss: false,
            line: 0,
        }
    }
}

/// A fixed-capacity instruction window with in-order retirement.
///
/// # Example
///
/// ```
/// use mlpsim_cpu::window::{InstructionWindow, WinEntry};
/// let mut w = InstructionWindow::new(4);
/// w.push(WinEntry::compute(5), 4);
/// w.push(WinEntry::compute(3), 4);
/// // At cycle 4 the head (done=5) blocks retirement even though the
/// // younger instruction is complete: retirement is in-order.
/// assert_eq!(w.retire_ready(4, 8), 0);
/// assert_eq!(w.retire_ready(5, 8), 2);
/// ```
#[derive(Clone, Debug)]
pub struct InstructionWindow {
    capacity: usize,
    len: usize,
    /// Lifetime pushes: the position the next push will occupy.
    pushed: u64,
    /// Lifetime retirements: the position of the current head.
    popped: u64,
    /// Entries that cannot be reconstructed from their position alone,
    /// oldest-first, tagged with their position.
    explicit: VecDeque<(u64, WinEntry)>,
    /// Cycle of the most recent push.
    last_push_cycle: u64,
    /// Position of the first push in the `last_push_cycle` batch.
    batch_start: u64,
}

impl InstructionWindow {
    /// Creates a window with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        InstructionWindow {
            capacity,
            len: 0,
            pushed: 0,
            popped: 0,
            explicit: VecDeque::new(),
            last_push_cycle: 0,
            batch_start: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window is full (dispatch must stall).
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Free entries.
    pub fn free(&self) -> usize {
        self.capacity - self.len
    }

    fn note_push_cycle(&mut self, now: u64) {
        debug_assert!(now >= self.last_push_cycle, "push cycles must be monotone");
        if now != self.last_push_cycle {
            self.last_push_cycle = now;
            self.batch_start = self.pushed;
        }
    }

    /// Dispatches one instruction into the window during cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (callers must check [`is_full`]).
    ///
    /// [`is_full`]: InstructionWindow::is_full
    pub fn push(&mut self, entry: WinEntry, now: u64) {
        assert!(!self.is_full(), "dispatch into a full window");
        self.note_push_cycle(now);
        // An entry completing at `now + 1` with no miss identity is the
        // generic shape its position already encodes; anything else must
        // be remembered explicitly.
        if entry.done != now + 1 || entry.l2_miss {
            self.explicit.push_back((self.pushed, entry));
        }
        self.pushed += 1;
        self.len += 1;
    }

    /// Dispatches `n` plain compute instructions (completing at `now + 1`)
    /// during cycle `now`, in O(1).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` entries are free.
    pub fn push_computes(&mut self, n: u32, now: u64) {
        assert!(self.free() >= n as usize, "dispatch into a full window");
        self.note_push_cycle(now);
        self.pushed += u64::from(n);
        self.len += n as usize;
    }

    /// The head entry if it exists and is *not* complete at `now` — the
    /// shape that stalls a full window (or the post-trace drain). Returns
    /// the entry so the caller can attribute the stall.
    pub fn stalled_head(&self, now: u64) -> Option<WinEntry> {
        debug_assert!(now >= self.last_push_cycle, "queries must be monotone");
        if self.len == 0 {
            return None;
        }
        if let Some(&(pos, e)) = self.explicit.front() {
            if pos == self.popped {
                return (e.done > now).then_some(e);
            }
        }
        // Implicit head: complete at its push cycle + 1, so it stalls
        // exactly when it belongs to a batch pushed this very cycle.
        (now == self.last_push_cycle && self.popped >= self.batch_start)
            .then(|| WinEntry::compute(now + 1))
    }

    /// Whether the head exists and completes at or before `t` (the
    /// profiler's "this advance will actually retire something" probe).
    pub fn head_ready_by(&self, t: u64) -> bool {
        if self.len == 0 {
            return false;
        }
        if let Some(&(pos, e)) = self.explicit.front() {
            if pos == self.popped {
                return e.done <= t;
            }
        }
        if self.popped >= self.batch_start {
            // Fresh implicit head: completes at `last_push_cycle + 1`.
            self.last_push_cycle < t
        } else {
            // Older implicit entries completed at or before the batch
            // cycle itself.
            self.last_push_cycle <= t
        }
    }

    /// Retires up to `max` instructions whose completion cycle is at or
    /// before `now`, in order; returns how many retired.
    pub fn retire_ready(&mut self, now: u64, max: u32) -> u32 {
        debug_assert!(
            now >= self.last_push_cycle,
            "retire cycles must be monotone"
        );
        let mut got: u32 = 0;
        while got < max && self.len > 0 {
            let next_explicit = self.explicit.front().map_or(self.pushed, |&(pos, _)| pos);
            if next_explicit > self.popped {
                // A run of implicit entries heads the window. All of them
                // are complete except a batch pushed this very cycle.
                let mut avail = next_explicit - self.popped;
                if now == self.last_push_cycle {
                    avail = avail.min(self.batch_start.saturating_sub(self.popped));
                    if avail == 0 {
                        break;
                    }
                }
                let k = avail.min(u64::from(max - got)) as u32;
                self.popped += u64::from(k);
                self.len -= k as usize;
                got += k;
            } else {
                let &(_, e) = self.explicit.front().expect("position matched");
                if e.done > now {
                    break;
                }
                self.explicit.pop_front();
                self.popped += 1;
                self.len -= 1;
                got += 1;
            }
        }
        got
    }

    /// Explicit entries oldest-first as `(position relative to the head,
    /// entry)` — the only residents that can block the in-order retirement
    /// schedule (every implicit entry completes by its retirement slot).
    pub fn explicit_from_head(&self) -> impl Iterator<Item = (u64, &WinEntry)> {
        self.explicit.iter().map(|(pos, e)| (pos - self.popped, e))
    }

    /// Fast-forwards `cycles` whole dispatch-and-retire cycles starting at
    /// `now`: each cycle pushes `width` plain computes (during cycles
    /// `now` … `now + cycles - 1`) and retires the oldest `width` entries
    /// (at cycles `now + 1` … `now + cycles`), leaving occupancy
    /// unchanged, in O(explicit entries crossed).
    ///
    /// The caller must have proven — via [`explicit_from_head`] — that
    /// every crossed entry completes by its in-order retirement slot;
    /// this is debug-asserted here.
    ///
    /// [`explicit_from_head`]: InstructionWindow::explicit_from_head
    pub fn fast_forward(&mut self, cycles: u64, width: u32, now: u64) {
        debug_assert!(now >= self.last_push_cycle, "time must be monotone");
        let n = cycles.saturating_mul(u64::from(width));
        while let Some(&(pos, e)) = self.explicit.front() {
            if pos >= self.popped.saturating_add(n) {
                break;
            }
            debug_assert!(
                // lint: bounded("pos >= popped for every queued entry; the quotient is <= cycles")
                e.done <= now + (pos - self.popped) / u64::from(width) + 1,
                "fast-forward crossed an entry that misses its retire slot"
            );
            let _ = e;
            self.explicit.pop_front();
        }
        self.popped = self.popped.saturating_add(n);
        self.pushed = self.pushed.saturating_add(n);
        // Occupancy is conserved: every cycle retires exactly as many
        // entries as it dispatches, so `len` is untouched.
        // The final cycle's dispatch group is the youngest batch.
        self.last_push_cycle = now.saturating_add(cycles) - 1;
        self.batch_start = self.pushed - u64::from(width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(done: u64) -> WinEntry {
        WinEntry::compute(done)
    }

    #[test]
    fn in_order_retirement_blocks_on_head() {
        let mut w = InstructionWindow::new(8);
        w.push(e(100), 0);
        for _ in 0..5 {
            w.push(e(1), 0);
        }
        assert_eq!(w.retire_ready(50, 8), 0, "head not done");
        assert_eq!(w.retire_ready(100, 8), 6, "head done frees the rest");
        assert!(w.is_empty());
    }

    #[test]
    fn retirement_respects_width() {
        let mut w = InstructionWindow::new(32);
        for _ in 0..20 {
            w.push(e(1), 0);
        }
        assert_eq!(w.retire_ready(10, 8), 8);
        assert_eq!(w.retire_ready(10, 8), 8);
        assert_eq!(w.retire_ready(10, 8), 4);
    }

    #[test]
    fn fullness_tracks_capacity() {
        let mut w = InstructionWindow::new(2);
        assert!(!w.is_full());
        w.push(e(1), 0);
        w.push(e(2), 1);
        assert!(w.is_full());
        assert_eq!(w.free(), 0);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn overfill_panics() {
        let mut w = InstructionWindow::new(1);
        w.push(e(1), 0);
        w.push(e(2), 1);
    }

    #[test]
    fn head_exposes_miss_flag() {
        let mut w = InstructionWindow::new(4);
        w.push(
            WinEntry {
                done: 500,
                l2_miss: true,
                line: 9,
            },
            0,
        );
        let head = w.stalled_head(0).unwrap();
        assert!(head.l2_miss);
        assert_eq!(head.line, 9);
    }

    #[test]
    fn implicit_entries_stall_only_in_their_push_cycle() {
        let mut w = InstructionWindow::new(16);
        // Pushed during cycle 7: complete at 8.
        w.push(e(8), 7);
        assert_eq!(w.stalled_head(7), Some(e(8)), "fresh compute stalls by 1");
        assert_eq!(w.retire_ready(7, 8), 0, "not complete in its own cycle");
        assert!(w.stalled_head(8).is_none(), "complete from the next cycle");
        assert_eq!(w.retire_ready(8, 8), 1);
    }

    #[test]
    fn batched_computes_match_individual_pushes() {
        let mut a = InstructionWindow::new(16);
        let mut b = InstructionWindow::new(16);
        for _ in 0..5 {
            a.push(e(4), 3);
        }
        b.push_computes(5, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.retire_ready(3, 8), b.retire_ready(3, 8));
        assert_eq!(a.retire_ready(4, 8), b.retire_ready(4, 8));
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn explicit_entries_keep_relative_positions() {
        let mut w = InstructionWindow::new(32);
        w.push_computes(6, 0);
        w.push(
            WinEntry {
                done: 500,
                l2_miss: true,
                line: 42,
            },
            0,
        );
        w.push_computes(3, 1);
        let found: Vec<(u64, u64)> = w.explicit_from_head().map(|(q, e)| (q, e.done)).collect();
        assert_eq!(found, vec![(6, 500)]);
        assert_eq!(w.retire_ready(2, 4), 4, "implicit run retires first");
        let found: Vec<u64> = w.explicit_from_head().map(|(q, _)| q).collect();
        assert_eq!(found, vec![2], "positions follow the head");
    }

    #[test]
    fn fast_forward_matches_per_cycle_stepping() {
        // Reference: per-cycle push width + retire width.
        let width = 4u32;
        let mut slow = InstructionWindow::new(64);
        let mut fast = InstructionWindow::new(64);
        for w in [&mut slow, &mut fast] {
            w.push_computes(16, 9); // 16 resident, complete at 10
        }
        for c in 1..=5u64 {
            let t = 10 + c - 1; // dispatch during t, retire at t + 1
            slow.push_computes(width, t);
            assert_eq!(slow.retire_ready(t + 1, width), width);
        }
        fast.fast_forward(5, width, 10);
        assert_eq!(slow.len(), fast.len());
        assert_eq!(slow.retire_ready(16, 8), fast.retire_ready(16, 8));
        assert_eq!(slow.retire_ready(16, 8), fast.retire_ready(16, 8));
    }
}
