//! Processor and system configuration (paper Table 2).

use crate::icache::IcacheConfig;
use crate::policy::PolicyKind;
use crate::prefetch::PrefetchConfig;
use crate::wrongpath::WrongPathConfig;
use mlpsim_cache::addr::Geometry;
use mlpsim_core::ccl::AdderMode;
use mlpsim_mem::MemConfig;

/// Maximum number of `(line, mlp_cost)` entries retained in
/// [`SimResult::miss_log`](crate::stats::SimResult::miss_log) when
/// [`SystemConfig::collect_miss_log`] is on. One entry is 16 bytes, so the
/// cap bounds the log at 16 MiB regardless of trace length; entries past
/// the cap are dropped (the per-miss analyses that consume the log — delta
/// scatter, cost CDFs — are statistical and unaffected by truncating the
/// tail). Full-stream per-miss data is available losslessly through the
/// telemetry layer (`serviced` events) instead.
pub const MISS_LOG_CAP: usize = 1 << 20;

/// When the cost-calculation logic accrues `1/N` (paper footnote 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CostAccounting {
    /// Every cycle a demand miss is outstanding (Algorithm 1 as written;
    /// the paper's default "for simplicity").
    #[default]
    AllCycles,
    /// Only during full-window stall cycles — the variant the paper
    /// "also experimented" with and found equivalent (footnote 4).
    StallCyclesOnly,
}

/// Core parameters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuConfig {
    /// Fetch/issue/retire width (8 in the baseline).
    pub width: u32,
    /// Instruction-window entries (128 in the baseline).
    pub window: usize,
    /// Store-buffer entries (128 in the baseline).
    pub store_buffer: usize,
    /// L1 data-cache hit latency in cycles (2 in the baseline).
    pub l1_hit_cycles: u64,
    /// L2 hit latency in cycles (15 in the baseline).
    pub l2_hit_cycles: u64,
}

impl CpuConfig {
    /// The paper's baseline core (Table 2).
    pub fn baseline() -> Self {
        CpuConfig {
            width: 8,
            window: 128,
            store_buffer: 128,
            l1_hit_cycles: 2,
            l2_hit_cycles: 15,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::baseline()
    }
}

/// Full-system configuration: core, caches, memory, and the L2 replacement
/// policy under study.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Core parameters.
    pub cpu: CpuConfig,
    /// L1 data cache geometry; `None` sends every access straight to the
    /// L2 (used by the Figure-1 microbenchmark, where the example cache is
    /// the only cache).
    pub l1: Option<Geometry>,
    /// Optional instruction-fetch model; `None` (the default) assumes a
    /// perfect I-cache, which is accurate for the data-bound SPEC subset
    /// the paper studies.
    pub icache: Option<IcacheConfig>,
    /// Optional synthetic wrong-path traffic; `None` (the default) models
    /// a perfect branch predictor. Wrong-path misses follow the paper's
    /// rule: demand until confirmed wrong-path, then demoted.
    pub wrong_path: Option<WrongPathConfig>,
    /// Optional next-line L2 prefetcher; `None` (the default) matches the
    /// paper's baseline.
    pub prefetch: Option<PrefetchConfig>,
    /// L2 (the "largest on-chip cache" whose replacement the paper
    /// studies).
    pub l2: Geometry,
    /// Off-chip memory system.
    pub mem: MemConfig,
    /// L2 replacement policy.
    pub policy: PolicyKind,
    /// Cost-calculation-logic adder configuration (paper footnote 3).
    pub adders: AdderMode,
    /// When the CCL accrues cost (paper footnote 4).
    pub cost_accounting: CostAccounting,
    /// Retired-instruction interval between engine epoch hooks
    /// (`rand-dynamic` leader reselection; the paper uses 25 M, scaled
    /// here to the shorter synthetic traces).
    pub epoch_insts: u64,
    /// Optional interval (retired instructions) for time-series sampling
    /// (Fig. 11); `None` disables sampling.
    pub sample_interval: Option<u64>,
    /// When true, serviced demand misses are appended to
    /// [`SimResult::miss_log`](crate::stats::SimResult::miss_log) as
    /// `(line, mlp_cost)` — per-line diagnostics at the price of memory.
    /// The log is bounded at [`MISS_LOG_CAP`] entries.
    pub collect_miss_log: bool,
    /// Test-only escape hatch: when set, dispatch gaps advance strictly
    /// cycle-by-cycle instead of taking the O(1) event-driven fast-forward.
    /// The two paths are equivalent by construction; the differential suite
    /// (`tests/event_equivalence.rs`) runs both and asserts identical
    /// stats, ledgers, and telemetry streams.
    #[doc(hidden)]
    pub legacy_stepping: bool,
}

impl SystemConfig {
    /// The paper's baseline machine with the given L2 policy.
    pub fn baseline(policy: PolicyKind) -> Self {
        SystemConfig {
            cpu: CpuConfig::baseline(),
            l1: Some(Geometry::baseline_l1d()),
            icache: None,
            wrong_path: None,
            prefetch: None,
            l2: Geometry::baseline_l2(),
            mem: MemConfig::baseline(),
            policy,
            adders: AdderMode::PerEntry,
            cost_accounting: CostAccounting::AllCycles,
            epoch_insts: 2_000_000,
            sample_interval: None,
            collect_miss_log: false,
            legacy_stepping: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SystemConfig::baseline(PolicyKind::Lru);
        assert_eq!(c.cpu.width, 8);
        assert_eq!(c.cpu.window, 128);
        assert_eq!(c.cpu.store_buffer, 128);
        assert_eq!(c.cpu.l1_hit_cycles, 2);
        assert_eq!(c.cpu.l2_hit_cycles, 15);
        assert_eq!(c.l1.unwrap().capacity_bytes(), 16 << 10);
        assert_eq!(c.l2.capacity_bytes(), 1 << 20);
        assert_eq!(c.mem.isolated_miss_cycles(), 444);
    }
}
