//! The store buffer.
//!
//! "Store instructions that miss the L2 cache do not block the window
//! unless the store buffer is full" (paper Table 2): stores retire
//! immediately into the buffer and drain to the memory system in the
//! background; only a full buffer back-pressures dispatch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A fixed-capacity store buffer tracking when each resident store's
/// memory access completes.
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    completions: BinaryHeap<Reverse<u64>>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates a buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be non-zero");
        StoreBuffer {
            completions: BinaryHeap::with_capacity(capacity),
            capacity,
        }
    }

    /// Releases entries whose stores completed at or before `now`.
    pub fn drain(&mut self, now: u64) {
        while let Some(&Reverse(t)) = self.completions.peek() {
            if t <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
    }

    /// Occupied entries (after the caller's last [`drain`]).
    ///
    /// [`drain`]: StoreBuffer::drain
    pub fn len(&self) -> usize {
        self.completions.len()
    }

    /// Whether no stores are buffered.
    pub fn is_empty(&self) -> bool {
        self.completions.is_empty()
    }

    /// Whether the buffer is full at cycle `now` (drains first).
    pub fn is_full(&mut self, now: u64) -> bool {
        self.drain(now);
        self.completions.len() >= self.capacity
    }

    /// Inserts a store completing at `done`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (callers must check [`is_full`]).
    ///
    /// [`is_full`]: StoreBuffer::is_full
    pub fn push(&mut self, done: u64) {
        assert!(
            self.completions.len() < self.capacity,
            "push into a full store buffer"
        );
        self.completions.push(Reverse(done));
    }

    /// Earliest pending completion, if any (the cycle dispatch should
    /// retry at when blocked on a full buffer).
    pub fn next_completion(&self) -> Option<u64> {
        self.completions.peek().map(|&Reverse(t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_completion_order() {
        let mut b = StoreBuffer::new(4);
        b.push(100);
        b.push(50);
        b.push(200);
        b.drain(99);
        assert_eq!(b.len(), 2);
        assert_eq!(b.next_completion(), Some(100));
    }

    #[test]
    fn fullness_blocks_until_drain() {
        let mut b = StoreBuffer::new(2);
        b.push(10);
        b.push(20);
        assert!(b.is_full(5));
        assert!(!b.is_full(10), "one entry drains at cycle 10");
        b.push(30);
        assert!(b.is_full(15));
    }

    #[test]
    #[should_panic(expected = "full store buffer")]
    fn overfill_panics() {
        let mut b = StoreBuffer::new(1);
        b.push(1);
        b.push(2);
    }
}
