//! Instruction-fetch modeling.
//!
//! The paper's baseline has a 16 KB instruction cache (Table 2) and its
//! cost model explicitly counts instruction accesses that miss the L2 as
//! demand misses (§3.1). Traces carry no program counters, so the fetch
//! stream is synthesized from the instruction *count*: the code is
//! modeled as a loop of `code_lines` cache lines executed front to back,
//! with one instruction-cache access per [`INSTS_PER_LINE`] instructions
//! (4-byte instructions, 64-byte lines).
//!
//! A fetch that misses the I-cache blocks *dispatch* (not retirement)
//! until the line arrives; I-misses go to the L2 and, on an L2 miss,
//! allocate a demand MSHR entry — so instruction misses participate in
//! MLP-cost accounting exactly like loads, as the paper specifies.
//!
//! Instruction fetch is optional (`SystemConfig::icache = None` by
//! default): the SPEC CPU2000 subset the paper evaluates is data-bound,
//! with negligible I-miss rates. The `icache_effects` experiment turns it
//! on to show the interaction.

use mlpsim_cache::addr::Geometry;
use serde::{Deserialize, Serialize};

/// Instructions per 64-byte cache line (4-byte fixed-width ISA, as on the
/// paper's Alpha).
pub const INSTS_PER_LINE: u64 = 16;

/// Line-address base for the synthesized code region — far above the
/// data slots used by the workload generators.
pub const CODE_BASE_LINE: u64 = 1 << 40;

/// Configuration of the instruction-fetch model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IcacheConfig {
    /// Instruction-cache geometry (the paper's baseline: 16 KB, 4-way,
    /// 64-byte lines).
    pub geometry: Geometry,
    /// I-cache hit latency in cycles (2 in the baseline; hits are fully
    /// pipelined and charged nothing by the fetch model).
    pub hit_cycles: u64,
    /// Size of the executed code loop, in cache lines. Footprints under
    /// the I-cache capacity (256 lines at 16 KB) hit after one warm-up
    /// pass; larger footprints thrash.
    pub code_lines: u64,
}

impl IcacheConfig {
    /// The paper's baseline I-cache (Table 2) with a loop footprint that
    /// comfortably fits (a compute kernel).
    pub fn baseline(code_lines: u64) -> Self {
        IcacheConfig {
            geometry: Geometry::new(16 << 10, 4, 64).expect("baseline I-cache geometry"),
            hit_cycles: 2,
            code_lines: code_lines.max(1),
        }
    }
}

/// The synthetic fetch walker: maps a running instruction count onto
/// code-region line addresses.
#[derive(Clone, Copy, Debug)]
pub struct FetchWalker {
    code_lines: u64,
    /// Instructions dispatched so far.
    instructions: u64,
}

impl FetchWalker {
    /// Creates a walker over a loop of `code_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `code_lines` is zero.
    pub fn new(code_lines: u64) -> Self {
        assert!(code_lines > 0, "code footprint must be non-empty");
        FetchWalker {
            code_lines,
            instructions: 0,
        }
    }

    /// Advances by one dispatched instruction; returns the line address to
    /// fetch if this instruction starts a new cache line.
    pub fn advance(&mut self) -> Option<u64> {
        let needs_fetch = self.instructions.is_multiple_of(INSTS_PER_LINE);
        let line = (self.instructions / INSTS_PER_LINE) % self.code_lines;
        self.instructions += 1;
        needs_fetch.then_some(CODE_BASE_LINE + line)
    }

    /// Instructions walked so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_fetch_per_line_of_instructions() {
        let mut w = FetchWalker::new(4);
        let mut fetches = 0;
        for _ in 0..64 {
            if w.advance().is_some() {
                fetches += 1;
            }
        }
        assert_eq!(fetches, 4, "64 insts / 16 per line");
        assert_eq!(w.instructions(), 64);
    }

    #[test]
    fn code_loop_wraps() {
        let mut w = FetchWalker::new(2);
        let mut lines = Vec::new();
        for _ in 0..64 {
            if let Some(l) = w.advance() {
                lines.push(l - CODE_BASE_LINE);
            }
        }
        assert_eq!(lines, vec![0, 1, 0, 1]);
    }

    #[test]
    fn baseline_geometry_matches_table2() {
        let c = IcacheConfig::baseline(10);
        assert_eq!(c.geometry.capacity_bytes(), 16 << 10);
        assert_eq!(c.geometry.ways(), 4);
        assert_eq!(c.code_lines, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_footprint_panics() {
        let _ = FetchWalker::new(0);
    }
}
