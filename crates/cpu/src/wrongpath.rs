//! Wrong-path memory traffic.
//!
//! The paper's accounting rule (§3.1): "We count instruction accesses,
//! load accesses, and store accesses that miss in the largest on-chip
//! cache as demand misses. All misses are treated on correct path until
//! they are confirmed to be on the wrong path. Misses on the wrong path
//! are not counted as demand misses."
//!
//! Traces carry only the correct path, so wrong-path traffic is
//! synthesized: every `interval_insts` dispatched instructions a branch
//! mispredicts, issuing `burst` wrong-path loads to fresh addresses.
//! Those loads pollute the caches and occupy MSHR entries, banks, and
//! bus bandwidth like real ones; they are treated as demand misses until
//! the branch resolves (`resolve_cycles` later, the paper's 15-cycle
//! minimum penalty), at which point they are demoted — their accumulated
//! cost is discarded and they stop diluting the `N` of Algorithm 1.
//!
//! Wrong-path modeling is off by default (`SystemConfig::wrong_path =
//! None`); the `wrong_path_effects` experiment quantifies its impact.

use serde::{Deserialize, Serialize};

/// Line-address base of the synthesized wrong-path region (disjoint from
/// both workload data slots and the code region).
pub const WRONG_PATH_BASE_LINE: u64 = 1 << 42;

/// Configuration of the synthetic wrong-path injector.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WrongPathConfig {
    /// Dispatched instructions between mispredicted branches.
    pub interval_insts: u64,
    /// Wrong-path loads issued per misprediction.
    pub burst: usize,
    /// Cycles until the misprediction is confirmed and the wrong-path
    /// misses are demoted (Table 2: minimum penalty 15 cycles).
    pub resolve_cycles: u64,
}

impl WrongPathConfig {
    /// A moderate default: one misprediction per 2000 instructions, four
    /// wrong-path loads each, resolved after the paper's 15-cycle minimum
    /// branch-misprediction penalty.
    pub fn baseline() -> Self {
        WrongPathConfig {
            interval_insts: 2_000,
            burst: 4,
            resolve_cycles: 15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_uses_table2_penalty() {
        let c = WrongPathConfig::baseline();
        assert_eq!(c.resolve_cycles, 15);
        assert!(c.interval_insts > 0 && c.burst > 0);
    }
}
