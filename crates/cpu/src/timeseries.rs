//! Interval sampling for the paper's Figure-11 case study.
//!
//! Figure 11 plots, for ammp, the average `cost_q` per miss, the misses
//! per 1000 instructions, and the IPC of LRU/LIN/SBAR over time. The
//! [`Sampler`] emits one [`Sample`] per fixed retired-instruction
//! interval.

use serde::{Deserialize, Serialize};

/// One interval sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Retired instructions at the end of the interval.
    pub instructions: u64,
    /// IPC within the interval.
    pub ipc: f64,
    /// L2 misses per 1000 instructions within the interval.
    pub mpki: f64,
    /// Average quantized cost per L2 miss within the interval (0 when no
    /// misses occurred).
    pub avg_cost_q: f64,
}

/// Accumulates per-interval deltas and emits samples.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval: u64,
    next_at: u64,
    last_insts: u64,
    last_cycles: u64,
    last_misses: u64,
    cost_q_sum: u64,
    cost_q_count: u64,
    samples: Vec<Sample>,
}

impl Sampler {
    /// Creates a sampler emitting every `interval` retired instructions.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be non-zero");
        Sampler {
            interval,
            next_at: interval,
            last_insts: 0,
            last_cycles: 0,
            last_misses: 0,
            cost_q_sum: 0,
            cost_q_count: 0,
            samples: Vec::new(),
        }
    }

    /// Records a serviced miss's quantized cost.
    pub fn record_miss_cost(&mut self, cost_q: u8) {
        self.cost_q_sum += u64::from(cost_q);
        self.cost_q_count += 1;
    }

    /// Called after retirement; emits a sample when the interval boundary
    /// is crossed. Returns how many samples this call appended (so callers
    /// can forward exactly the new ones to a telemetry stream).
    pub fn tick(&mut self, instructions: u64, cycles: u64, l2_misses: u64) -> usize {
        let before = self.samples.len();
        while instructions >= self.next_at {
            let d_inst = instructions - self.last_insts;
            let d_cyc = cycles.saturating_sub(self.last_cycles).max(1);
            let d_miss = l2_misses - self.last_misses;
            let ipc = d_inst as f64 / d_cyc as f64;
            let mpki = if d_inst == 0 {
                0.0
            } else {
                d_miss as f64 * 1000.0 / d_inst as f64
            };
            let avg_cost_q = if self.cost_q_count == 0 {
                0.0
            } else {
                self.cost_q_sum as f64 / self.cost_q_count as f64
            };
            self.samples.push(Sample {
                instructions,
                ipc,
                mpki,
                avg_cost_q,
            });
            self.last_insts = instructions;
            self.last_cycles = cycles;
            self.last_misses = l2_misses;
            self.cost_q_sum = 0;
            self.cost_q_count = 0;
            self.next_at = self.next_at.saturating_add(self.interval);
        }
        self.samples.len() - before
    }

    /// The retired-instruction count at which the next sample fires. A
    /// caller fast-forwarding time must stop short of this boundary so the
    /// crossing cycle (which stamps the sample's cycle and IPC window) is
    /// reached by ordinary stepping.
    pub fn next_boundary(&self) -> u64 {
        self.next_at
    }

    /// Samples emitted so far.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the sampler, returning its samples.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_per_interval() {
        let mut s = Sampler::new(100);
        s.record_miss_cost(7);
        s.record_miss_cost(1);
        assert_eq!(s.tick(50, 100, 1), 0); // below the boundary: nothing
        assert_eq!(s.tick(100, 200, 2), 1);
        s.record_miss_cost(3);
        assert_eq!(s.tick(250, 500, 5), 1); // crosses 200: one more sample
        let samples = s.into_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].instructions, 100);
        assert!((samples[0].ipc - 0.5).abs() < 1e-12);
        assert_eq!(samples[0].mpki, 20.0);
        assert_eq!(samples[0].avg_cost_q, 4.0);
        // Second sample covers (100, 250]: 150 insts, 300 cycles, 3 misses.
        assert!((samples[1].ipc - 0.5).abs() < 1e-12);
        assert_eq!(samples[1].mpki, 20.0);
        assert_eq!(samples[1].avg_cost_q, 3.0);
    }

    #[test]
    fn no_misses_means_zero_cost() {
        let mut s = Sampler::new(10);
        s.tick(10, 10, 0);
        assert_eq!(s.into_samples()[0].avg_cost_q, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = Sampler::new(0);
    }
}
