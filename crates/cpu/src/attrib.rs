//! In-simulator stall-cycle attribution (the producer side of
//! `mlpsim_telemetry::attrib`).
//!
//! Every full-window memory stall in [`crate::system::System`] opens a
//! *span*; the span's cycles are apportioned across the demand misses
//! concurrently outstanding in the MSHR with the same `1/N` divisor as
//! Algorithm 1 — but in exact integer arithmetic
//! ([`mlpsim_telemetry::exact_share`]): a sub-interval of `delta` cycles
//! with `N` outstanding demand misses gives each miss `delta / N` cycles
//! and hands the `delta % N` remainder to the lowest-indexed slots. Every
//! sub-interval therefore sums to exactly `delta`, and the grand total
//! over a run reconciles with `mem_stall_cycles` as a `u64` equality —
//! the `invariant!` the `invariants` feature enforces at finalize.
//!
//! The tracker mirrors the CCL's event-driven charging: the system calls
//! [`AttribTracker::charge`] wherever it calls `ccl.advance` while a span
//! is open (MSHR occupancy is piecewise-constant between those points),
//! so both accountings see identical `N` boundaries.
//!
//! Apportioned cycles accumulate per MSHR slot and move into the ledger
//! when the slot's entry is freed — at which point the miss's final
//! `mlp_cost` (hence `cost_q`) is known. Two leftovers are swept up so
//! conservation is exact:
//!
//! - *Residual*: span tail intervals with zero demand entries (a merged
//!   delayed hit can keep the window head waiting past its entry's free)
//!   are charged to the span head's own key at span close.
//! - *Unflushed slots*: entries still in flight at the end of the run
//!   (none, after a normal drain, but [`AttribTracker::finalize`] sweeps
//!   them regardless) flush with their tag's identity.

use mlpsim_core::quant::quantize;
use mlpsim_mem::Mshr;
use mlpsim_telemetry::span::Span;
use mlpsim_telemetry::{exact_share, LedgerKey, StallLedger};

/// Identity captured when an MSHR slot is allocated: where the attributed
/// cycles will land in the ledger.
#[derive(Clone, Copy, Debug)]
struct SlotTag {
    /// L2 set index the missing line mapped to.
    set: u64,
    /// Replacement policy governing that set at allocation time.
    policy: &'static str,
}

/// One flushed attribution: the system emits a `stall_attrib` event from
/// this when a probe is attached.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttribCharge {
    /// Block address of the serviced miss.
    pub line: u64,
    /// L2 set index the line mapped to.
    pub set: u64,
    /// 3-bit quantized mlp-cost at service time.
    pub cost_q: u8,
    /// Replacement policy governing the set at allocation time.
    pub policy: &'static str,
    /// Stall cycles attributed to this miss.
    pub cycles: u64,
}

/// Per-run stall-attribution state. See the module docs for the protocol.
#[derive(Debug)]
pub struct AttribTracker {
    /// Whether a stall span is open.
    active: bool,
    /// Last cycle charged within the open span.
    last_cycle: u64,
    /// Open span's begin cycle, head line/set/policy, and opening `N`.
    span_begin: u64,
    span_line: u64,
    span_set: u64,
    span_policy: &'static str,
    span_n_begin: u64,
    /// `cost_q` of the head miss, learned if its entry frees mid-span.
    span_head_cost_q: Option<u8>,
    /// Span cycles that found zero demand entries to charge.
    residual: u64,
    /// Accumulated attributed cycles per MSHR slot.
    slot_acc: Vec<u64>,
    /// Ledger identity per MSHR slot, captured at allocate.
    slot_tags: Vec<Option<SlotTag>>,
    ledger: StallLedger,
}

impl AttribTracker {
    /// Tracker for an MSHR with `slots` entries.
    pub fn new(slots: usize) -> Self {
        AttribTracker {
            active: false,
            last_cycle: 0,
            span_begin: 0,
            span_line: 0,
            span_set: 0,
            span_policy: "",
            span_n_begin: 0,
            span_head_cost_q: None,
            residual: 0,
            slot_acc: vec![0; slots],
            slot_tags: vec![None; slots],
            ledger: StallLedger::new(),
        }
    }

    /// Records the ledger identity of a freshly allocated MSHR slot.
    pub fn on_alloc(&mut self, slot: usize, set: u64, policy: &'static str) {
        self.slot_tags[slot] = Some(SlotTag { set, policy });
    }

    /// Opens a stall span at `now` on the window-head miss to `line`
    /// (mapping to `set` under `policy`).
    pub fn open(&mut self, now: u64, line: u64, set: u64, policy: &'static str, mshr: &Mshr) {
        crate::invariant!(!self.active, "stall spans never nest");
        self.active = true;
        self.last_cycle = now;
        self.span_begin = now;
        self.span_line = line;
        self.span_set = set;
        self.span_policy = policy;
        self.span_n_begin = mshr.demand_count() as u64;
        self.span_head_cost_q = None;
    }

    /// Charges the interval since the last charge point across the demand
    /// entries currently outstanding. Call sites mirror `ccl.advance`:
    /// MSHR occupancy must not have changed since `last_cycle`. No-op
    /// outside a span.
    pub fn charge(&mut self, mshr: &Mshr, now: u64) {
        if !self.active || now <= self.last_cycle {
            return;
        }
        // The early return above makes the subtraction exact.
        let delta = now.wrapping_sub(self.last_cycle);
        self.last_cycle = now;
        let n = mshr.demand_count() as u64;
        if n == 0 {
            self.residual = self.residual.saturating_add(delta);
            return;
        }
        let mut i = 0u64;
        for (id, entry) in mshr.iter() {
            if entry.is_demand {
                self.slot_acc[id.0] += exact_share(delta, n, i);
                i += 1;
            }
        }
        crate::invariant!(i == n, "demand recount matches the cached divisor");
    }

    /// Flushes a slot's accumulated cycles into the ledger as its entry is
    /// freed (or finally, at end of run). `line` is the entry's block
    /// address and `mlp_cost` its Algorithm-1 cost at this moment; returns
    /// the charge for event emission when anything was attributed.
    pub fn flush_slot(&mut self, slot: usize, line: u64, mlp_cost: f64) -> Option<AttribCharge> {
        let cost_q = quantize(mlp_cost);
        if self.active && line == self.span_line {
            // The head miss of the open span is being serviced: remember
            // its cost for the span record and any residual.
            self.span_head_cost_q = Some(cost_q);
        }
        let cycles = std::mem::take(&mut self.slot_acc[slot]);
        let tag = self.slot_tags[slot].take();
        if cycles == 0 {
            return None;
        }
        let tag = tag.expect("charged slots were tagged at allocate");
        self.ledger.charge(
            LedgerKey {
                set: tag.set,
                cost_q,
                policy: tag.policy.to_string(),
            },
            cycles,
        );
        Some(AttribCharge {
            line,
            set: tag.set,
            cost_q,
            policy: tag.policy,
            cycles,
        })
    }

    /// Closes the open span at `now`, folding any residual into the span
    /// head's key. `fallback_cost_q` supplies the head's bucket when its
    /// entry did not free within the span (e.g. a merged delayed hit whose
    /// fill completed earlier). Returns the span for event emission.
    ///
    /// The caller must [`AttribTracker::charge`] up to `now` first.
    pub fn close(&mut self, now: u64, fallback_cost_q: u8) -> Span {
        crate::invariant!(self.active, "close requires an open span");
        crate::invariant!(
            self.last_cycle == now,
            "span must be charged through its end"
        );
        self.active = false;
        let cost_q = self.span_head_cost_q.unwrap_or(fallback_cost_q);
        let residual = std::mem::take(&mut self.residual);
        if residual > 0 {
            self.ledger.charge(
                LedgerKey {
                    set: self.span_set,
                    cost_q,
                    policy: self.span_policy.to_string(),
                },
                residual,
            );
        }
        Span {
            begin: self.span_begin,
            end: now,
            line: self.span_line,
            set: self.span_set,
            cost_q,
            policy: self.span_policy.to_string(),
            n_begin: self.span_n_begin,
        }
    }

    /// Residual charged to the open span's head at close, so the system
    /// can mirror it as a `stall_attrib` event.
    pub fn residual_charge(&self) -> Option<AttribCharge> {
        if self.residual > 0 {
            Some(AttribCharge {
                line: self.span_line,
                set: self.span_set,
                cost_q: self.span_head_cost_q.unwrap_or(0),
                policy: self.span_policy,
                cycles: self.residual,
            })
        } else {
            None
        }
    }

    /// Sweeps any still-tagged slots into the ledger (entries alive at end
    /// of run) and returns the finished ledger. Conservation —
    /// `ledger.total() == mem_stall_cycles` — is the caller's invariant.
    pub fn finalize(mut self, mshr: &Mshr) -> StallLedger {
        crate::invariant!(!self.active, "finalize with a span still open");
        for slot in 0..self.slot_acc.len() {
            if self.slot_acc[slot] > 0 {
                let (line, cost) = mshr
                    .get(mlpsim_mem::MshrId(slot))
                    .map(|e| (e.line.0, e.mlp_cost))
                    .unwrap_or((0, 0.0));
                self.flush_slot(slot, line, cost);
            }
        }
        self.ledger
    }

    /// Running ledger total (for the reconciliation invariant).
    pub fn total(&self) -> u64 {
        self.ledger.total() + self.residual + self.slot_acc.iter().sum::<u64>()
    }

    /// Whether a span is currently open.
    pub fn active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpsim_cache::addr::LineAddr;

    fn mshr_with(demand_lines: &[u64]) -> Mshr {
        let mut m = Mshr::new(8);
        for &l in demand_lines {
            m.allocate(LineAddr(l), 0, 1_000, true).unwrap();
        }
        m
    }

    #[test]
    fn single_miss_span_charges_everything_to_it() {
        let mshr = mshr_with(&[7]);
        let mut t = AttribTracker::new(8);
        t.on_alloc(0, 3, "lru");
        t.open(100, 7, 3, "lru", &mshr);
        t.charge(&mshr, 544);
        let charge = t.flush_slot(0, 7, 444.0).expect("cycles attributed");
        assert_eq!(charge.cycles, 444);
        assert_eq!(charge.set, 3);
        assert_eq!(charge.cost_q, 7);
        let span = t.close(544, 0);
        assert_eq!(span.len(), 444);
        assert_eq!(span.cost_q, 7, "head free mid-span resolved the bucket");
        let ledger = t.finalize(&mshr);
        assert_eq!(ledger.total(), 444);
    }

    #[test]
    fn parallel_misses_split_exactly() {
        let mshr = mshr_with(&[1, 2, 3]);
        let mut t = AttribTracker::new(8);
        for (slot, set) in [(0, 10), (1, 20), (2, 30)] {
            t.on_alloc(slot, set, "lin");
        }
        t.open(0, 1, 10, "lin", &mshr);
        t.charge(&mshr, 100); // 100 over 3: 34, 33, 33
        let c0 = t.flush_slot(0, 1, 50.0).unwrap();
        let c1 = t.flush_slot(1, 2, 50.0).unwrap();
        let c2 = t.flush_slot(2, 3, 50.0).unwrap();
        assert_eq!(c0.cycles, 34);
        assert_eq!(c1.cycles, 33);
        assert_eq!(c2.cycles, 33);
        let _ = t.close(100, 0);
        assert_eq!(t.finalize(&mshr).total(), 100);
    }

    #[test]
    fn zero_demand_tail_lands_on_the_span_head() {
        // The head's entry freed before the span ends (merged delayed
        // hit): the tail interval has N == 0 and goes to the head's key.
        let empty = Mshr::new(8);
        let mut t = AttribTracker::new(8);
        t.open(100, 5, 2, "lru", &empty);
        t.charge(&empty, 160);
        assert_eq!(t.residual_charge().map(|c| c.cycles), Some(60));
        let span = t.close(160, 4);
        assert_eq!(span.cost_q, 4, "fallback bucket when the head never freed");
        let ledger = t.finalize(&empty);
        assert_eq!(ledger.total(), 60);
        let (key, cycles) = ledger.iter().next().expect("one bucket");
        assert_eq!(key.set, 2);
        assert_eq!(key.cost_q, 4);
        assert_eq!(cycles, 60);
    }

    #[test]
    fn charges_outside_spans_are_dropped() {
        let mshr = mshr_with(&[1]);
        let mut t = AttribTracker::new(8);
        t.on_alloc(0, 1, "lru");
        t.charge(&mshr, 500); // no span open: nothing accrues
        assert_eq!(t.total(), 0);
        assert!(t.flush_slot(0, 1, 444.0).is_none());
    }

    #[test]
    fn accumulation_survives_across_spans_until_free() {
        let mshr = mshr_with(&[1, 2]);
        let mut t = AttribTracker::new(8);
        t.on_alloc(0, 1, "lin");
        t.on_alloc(1, 2, "lru");
        t.open(0, 1, 1, "lin", &mshr);
        t.charge(&mshr, 10); // 5 each
        let _ = t.close(10, 0);
        t.open(50, 2, 2, "lru", &mshr);
        t.charge(&mshr, 70); // 10 more each
        let _ = t.close(70, 0);
        let c0 = t.flush_slot(0, 1, 100.0).unwrap();
        let c1 = t.flush_slot(1, 2, 100.0).unwrap();
        assert_eq!(c0.cycles, 15);
        assert_eq!(c1.cycles, 15);
        assert_eq!(t.finalize(&mshr).total(), 30);
    }
}
