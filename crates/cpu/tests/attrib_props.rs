#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property tests for stall-cycle attribution: for any trace, the ledger
//! is an exact partition of `mem_stall_cycles` (conservation), the event
//! stream folds back to the same ledger, and attaching a probe changes
//! nothing architectural.

use mlpsim_cpu::{PolicyKind, SimResult, System, SystemConfig};
use mlpsim_telemetry::{Event, SinkHandle, SinkProbe, Span, StallLedger, VecSink};
use mlpsim_trace::record::{Access, Trace};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A random access: `sel` picks a line from a pool small enough to create
/// merges, conflicts, and re-misses; `gap` spans isolated-to-overlapped.
fn trace_from(parts: &[(u64, u32, u32)]) -> Trace {
    parts
        .iter()
        .map(|&(sel, gap, kind)| {
            // Mix tight reuse (same lines), set conflicts (multiples of
            // 1024 share an L2 set), and distinct-bank streaming.
            let line = match sel % 4 {
                0 => sel % 8,
                1 => (sel % 24) * 1024,
                2 => (sel % 16) << 13,
                _ => 4_000 + sel % 64,
            };
            if kind < 15 {
                Access::store(line, gap)
            } else {
                Access::load(line, gap)
            }
        })
        .collect()
}

fn run_with_probe(cfg: SystemConfig, trace: &Trace) -> (SimResult, Vec<Event>) {
    let buf = Arc::new(Mutex::new(VecSink::new()));
    let handle =
        SinkHandle::shared(buf.clone() as Arc<Mutex<dyn mlpsim_telemetry::EventSink + Send>>);
    let r = System::with_probe(cfg, SinkProbe::new(handle)).run(trace.iter());
    let events = std::mem::take(&mut buf.lock().unwrap().events);
    (r, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: the ledger partitions `mem_stall_cycles` exactly,
    /// the `stall_attrib` stream folds back to the same totals, and the
    /// spans tile the memory-stall time.
    #[test]
    fn ledger_partitions_mem_stall_cycles_exactly(
        parts in prop::collection::vec((0u64..64, 0u32..500, 0u32..100), 1..250),
        sbar in prop::bool::ANY,
    ) {
        let trace = trace_from(&parts);
        let policy = if sbar {
            PolicyKind::Sbar(mlpsim_core::sbar::SbarConfig::paper_default())
        } else {
            PolicyKind::Lru
        };
        let (r, events) = run_with_probe(SystemConfig::baseline(policy), &trace);

        let ledger = r.stall_ledger.as_ref().expect("probe-enabled runs carry a ledger");
        prop_assert_eq!(ledger.total(), r.mem_stall_cycles, "ledger conservation");

        // The event stream is a faithful mirror of the in-memory ledger.
        let mut folded = StallLedger::new();
        for ev in &events {
            folded.observe(ev);
        }
        prop_assert_eq!(folded.total(), r.mem_stall_cycles, "event-stream conservation");

        // Spans tile the memory-stall intervals: lengths sum to the total
        // and they never overlap (they are emitted in time order).
        let spans = Span::collect(events.iter());
        let span_cycles: u64 = spans.iter().map(Span::len).sum();
        prop_assert_eq!(span_cycles, r.mem_stall_cycles, "spans tile the stall time");
        let intervals: Vec<(u64, u64)> = spans.iter().map(|s| (s.begin, s.end)).collect();
        prop_assert!(mlpsim_telemetry::span::check_disjoint(&intervals).is_ok());
    }

    /// Observer transparency: attaching a probe (and with it the
    /// attribution tracker) changes no architectural result — same miss
    /// counts, same victim behavior, same PSEL state, same timing.
    #[test]
    fn probe_attachment_is_architecturally_invisible(
        parts in prop::collection::vec((0u64..64, 0u32..500, 0u32..100), 1..200),
        sbar in prop::bool::ANY,
    ) {
        let trace = trace_from(&parts);
        let policy = if sbar {
            PolicyKind::Sbar(mlpsim_core::sbar::SbarConfig::paper_default())
        } else {
            PolicyKind::Lru
        };
        let plain = System::new(SystemConfig::baseline(policy)).run(trace.iter());
        let (mut probed, _) = run_with_probe(SystemConfig::baseline(policy), &trace);
        // The ledger itself is the one sanctioned difference (`Some` vs.
        // `None` without the `invariants` feature); everything else —
        // cycles, miss counts, cost histogram, PSEL debug state — must be
        // bit-identical.
        probed.stall_ledger = plain.stall_ledger.clone();
        prop_assert_eq!(probed, plain);
    }
}
