//! Differential test for the event-driven core loop.
//!
//! The simulator fast-forwards idle dispatch cycles in O(1)
//! (`System::gap_fast_forward`); `SystemConfig::legacy_stepping` keeps the
//! original cycle-by-cycle path alive as the reference model. The two must
//! be *indistinguishable*: identical `SimResult` (stats, samples, miss log,
//! and the stall-attribution ledger) and an identical telemetry event
//! stream, over workloads that exercise every discrete event the jump has
//! to stop for — fills, squashes, epochs, sampler boundaries, synthetic
//! branches, prefetches, and footnote-4 gated-cost spans.

use mlpsim_cpu::{PolicyKind, SimResult, System, SystemConfig};
use mlpsim_telemetry::{Event, EventSink, SinkHandle, SinkProbe};
use mlpsim_trace::gen::spec::SpecBench;
use mlpsim_trace::record::Trace;
use std::sync::{Arc, Mutex};

const ACCESSES: usize = 6_000;

/// Sink that mirrors every event into a shared vector the test can read
/// back after the run.
struct Capture(Arc<Mutex<Vec<Event>>>);

impl EventSink for Capture {
    fn record(&mut self, ev: Event) {
        self.0.lock().expect("capture mutex poisoned").push(ev);
    }
}

/// Runs `cfg` over `trace` with a recording probe; returns the result and
/// the captured event stream.
fn run_instrumented(cfg: SystemConfig, trace: &Trace) -> (SimResult, Vec<Event>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let probe = SinkProbe::new(SinkHandle::of(Capture(Arc::clone(&events))));
    let result = System::with_probe(cfg, probe).run(trace.iter());
    let events = std::mem::take(&mut *events.lock().expect("capture mutex poisoned"));
    (result, events)
}

/// Asserts that the event-driven path and the legacy cycle-stepping path
/// are indistinguishable for `cfg` over `trace`.
#[allow(clippy::needless_pass_by_value)]
fn assert_paths_equivalent(label: &str, cfg: SystemConfig, trace: &Trace) {
    let mut legacy_cfg = cfg.clone();
    legacy_cfg.legacy_stepping = true;

    let (fast, fast_events) = run_instrumented(cfg, trace);
    let (slow, slow_events) = run_instrumented(legacy_cfg, trace);

    assert_eq!(
        fast, slow,
        "[{label}] SimResult diverged between event-driven and legacy paths"
    );
    assert_eq!(
        fast_events.len(),
        slow_events.len(),
        "[{label}] event stream lengths diverged"
    );
    for (i, (f, s)) in fast_events.iter().zip(slow_events.iter()).enumerate() {
        assert_eq!(
            f, s,
            "[{label}] event #{i} diverged between event-driven and legacy paths"
        );
    }
    // The ledger must not just match the legacy path — it must still be an
    // exact partition of the memory-stall cycles (instrumented runs always
    // carry the tracker).
    let ledger = fast
        .stall_ledger
        .as_ref()
        .expect("instrumented runs carry the attribution ledger");
    assert_eq!(
        ledger.total(),
        fast.mem_stall_cycles,
        "[{label}] ledger must reconcile exactly with mem_stall_cycles"
    );
}

fn fig5_trace(bench: SpecBench) -> Trace {
    bench.generate(ACCESSES, 42)
}

#[test]
fn fig5_workloads_match_under_lru_and_lin() {
    for bench in [SpecBench::Mcf, SpecBench::Art, SpecBench::Ammp] {
        let trace = fig5_trace(bench);
        for policy in [PolicyKind::Lru, PolicyKind::lin4()] {
            assert_paths_equivalent(
                &format!("{bench}/{policy:?}"),
                SystemConfig::baseline(policy),
                &trace,
            );
        }
    }
}

#[test]
fn sampler_and_small_epochs_match() {
    let trace = fig5_trace(SpecBench::Parser);
    let mut cfg = SystemConfig::baseline(PolicyKind::lin4());
    // Force many boundary crossings so jumps must stop at each one.
    cfg.sample_interval = Some(500);
    cfg.epoch_insts = 2_000;
    cfg.collect_miss_log = true;
    assert_paths_equivalent("parser/sampler+epochs", cfg, &trace);
}

#[test]
fn gated_cost_spans_match() {
    let trace = fig5_trace(SpecBench::Twolf);
    let mut cfg = SystemConfig::baseline(PolicyKind::lin4());
    cfg.cost_accounting = mlpsim_cpu::config::CostAccounting::StallCyclesOnly;
    assert_paths_equivalent("twolf/gated-cost", cfg, &trace);
}

#[test]
fn wrong_path_and_prefetch_match() {
    let trace = fig5_trace(SpecBench::Facerec);
    let mut cfg = SystemConfig::baseline(PolicyKind::lin4());
    cfg.wrong_path = Some(mlpsim_cpu::wrongpath::WrongPathConfig {
        interval_insts: 700,
        burst: 4,
        resolve_cycles: 15,
    });
    cfg.prefetch = Some(mlpsim_cpu::prefetch::PrefetchConfig { degree: 2 });
    assert_paths_equivalent("facerec/wrong-path+prefetch", cfg, &trace);
}

#[test]
fn icache_path_matches() {
    let trace = fig5_trace(SpecBench::Vpr);
    let mut cfg = SystemConfig::baseline(PolicyKind::Lru);
    cfg.icache = Some(mlpsim_cpu::icache::IcacheConfig::baseline(256));
    assert_paths_equivalent("vpr/icache", cfg, &trace);
}

#[test]
fn uninstrumented_results_match_too() {
    // `System::new` (NoProbe) drops the attribution tracker unless the
    // `invariants` feature is on — a different hot path worth covering.
    let trace = fig5_trace(SpecBench::Mcf);
    let cfg = SystemConfig::baseline(PolicyKind::lin4());
    let mut legacy_cfg = cfg.clone();
    legacy_cfg.legacy_stepping = true;
    let fast = System::new(cfg).run(trace.iter());
    let slow = System::new(legacy_cfg).run(trace.iter());
    assert_eq!(fast, slow);
}
