//! Memory-system configuration (paper Table 2).

use serde::{Deserialize, Serialize};

/// Configuration of the off-chip memory system.
///
/// Defaults reproduce the paper's baseline: "32 DRAM banks; 400-cycle
/// access latency; bank conflicts modeled; maximum 32 outstanding requests;
/// 16B-wide split-transaction bus at 4:1 frequency ratio; queueing delays
/// modeled", with an isolated miss taking 400 + 44 = 444 cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemConfig {
    /// Number of independent DRAM banks.
    pub banks: u32,
    /// DRAM access latency per request, in CPU cycles.
    pub dram_access_cycles: u64,
    /// Fixed (non-occupying) portion of the bus round trip: request
    /// transfer, arbitration, and command latency.
    pub bus_fixed_cycles: u64,
    /// Bus occupancy of one cache-line data transfer: 64-byte line over a
    /// 16-byte bus at a 4:1 CPU:bus frequency ratio → 4 beats × 4 cycles.
    pub bus_transfer_cycles: u64,
    /// Maximum outstanding requests (MSHR entries).
    pub mshr_entries: usize,
}

impl MemConfig {
    /// The paper's baseline memory system (Table 2).
    pub fn baseline() -> Self {
        MemConfig {
            banks: 32,
            dram_access_cycles: 400,
            bus_fixed_cycles: 28,
            bus_transfer_cycles: 16,
            mshr_entries: 32,
        }
    }

    /// Latency of a fully isolated, conflict-free miss: DRAM access plus
    /// the full bus delay. For the baseline this is the paper's 444 cycles.
    pub fn isolated_miss_cycles(&self) -> u64 {
        self.dram_access_cycles
            .saturating_add(self.bus_fixed_cycles)
            .saturating_add(self.bus_transfer_cycles)
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_isolated_miss_is_444_cycles() {
        assert_eq!(MemConfig::baseline().isolated_miss_cycles(), 444);
    }

    #[test]
    fn baseline_matches_table2() {
        let c = MemConfig::baseline();
        assert_eq!(c.banks, 32);
        assert_eq!(c.dram_access_cycles, 400);
        assert_eq!(c.mshr_entries, 32);
        // 64B line over 16B bus at 4:1 → 16 CPU cycles of occupancy.
        assert_eq!(c.bus_transfer_cycles, 16);
    }
}
