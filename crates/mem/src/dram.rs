//! DRAM bank model with bank-conflict queueing.

use mlpsim_cache::addr::LineAddr;
use serde::{Deserialize, Serialize};

/// Statistics collected by the [`DramBanks`] model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Requests that had to wait behind an earlier request to the same bank.
    pub bank_conflicts: u64,
    /// Total cycles spent waiting for a busy bank (queueing delay).
    pub conflict_wait_cycles: u64,
}

/// A set of independent DRAM banks; each bank services one request at a
/// time with a fixed access latency, and line addresses interleave across
/// banks (line-interleaved mapping).
///
/// Bank conflicts serialize requests, which is the mechanism by which "some
/// of the parallel misses … are serialized because of DRAM bank conflicts"
/// and end up in the right-most bar of the paper's Figure 2.
#[derive(Clone, Debug)]
pub struct DramBanks {
    access_cycles: u64,
    bank_free_at: Vec<u64>,
    stats: DramStats,
}

impl DramBanks {
    /// Creates `banks` banks with a fixed `access_cycles` latency.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: u32, access_cycles: u64) -> Self {
        assert!(banks > 0, "bank count must be non-zero");
        DramBanks {
            access_cycles,
            bank_free_at: vec![0; banks as usize],
            stats: DramStats::default(),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.bank_free_at.len() as u32
    }

    /// The bank a line maps to (line-interleaved).
    pub fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 % self.bank_free_at.len() as u64) as usize
    }

    /// Schedules an access to `line` arriving at cycle `arrival`; returns
    /// the cycle its data is available at the bank's output.
    pub fn schedule(&mut self, line: LineAddr, arrival: u64) -> u64 {
        let bank = self.bank_of(line);
        let start = arrival.max(self.bank_free_at[bank]);
        if start > arrival {
            self.stats.bank_conflicts += 1;
            // `start > arrival` makes the subtraction exact.
            let waited = start.wrapping_sub(arrival);
            self.stats.conflict_wait_cycles =
                self.stats.conflict_wait_cycles.saturating_add(waited);
        }
        let done = start.saturating_add(self.access_cycles);
        self.bank_free_at[bank] = done;
        self.stats.requests += 1;
        done
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_banks_service_in_parallel() {
        let mut d = DramBanks::new(4, 400);
        let t0 = d.schedule(LineAddr(0), 100);
        let t1 = d.schedule(LineAddr(1), 100);
        assert_eq!(t0, 500);
        assert_eq!(t1, 500);
        assert_eq!(d.stats().bank_conflicts, 0);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = DramBanks::new(4, 400);
        let t0 = d.schedule(LineAddr(0), 100);
        let t1 = d.schedule(LineAddr(4), 100); // 4 % 4 == bank 0
        assert_eq!(t0, 500);
        assert_eq!(t1, 900);
        assert_eq!(d.stats().bank_conflicts, 1);
        assert_eq!(d.stats().conflict_wait_cycles, 400);
    }

    #[test]
    fn idle_bank_starts_immediately() {
        let mut d = DramBanks::new(2, 10);
        d.schedule(LineAddr(0), 0);
        // Long after the bank freed: no conflict.
        let t = d.schedule(LineAddr(2), 1000);
        assert_eq!(t, 1010);
        assert_eq!(d.stats().bank_conflicts, 0);
    }

    #[test]
    fn access_clock_saturates_near_u64_max() {
        // The spelled-out bounds (D7): an arrival at the end of
        // representable time pins the bank at u64::MAX instead of
        // wrapping into the past.
        let mut d = DramBanks::new(1, 400);
        assert_eq!(d.schedule(LineAddr(0), u64::MAX - 10), u64::MAX);
        // The saturated bank makes the next access wait exactly to MAX.
        assert_eq!(d.schedule(LineAddr(0), 0), u64::MAX);
        assert_eq!(d.stats().conflict_wait_cycles, u64::MAX);
    }

    #[test]
    fn bank_mapping_is_line_interleaved() {
        let d = DramBanks::new(32, 400);
        assert_eq!(d.bank_of(LineAddr(0)), 0);
        assert_eq!(d.bank_of(LineAddr(31)), 31);
        assert_eq!(d.bank_of(LineAddr(32)), 0);
    }
}
