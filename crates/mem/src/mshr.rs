//! Miss Status Holding Registers.
//!
//! "Each miss is allocated an MSHR entry before a request to service that
//! miss is sent to memory" (paper §3.1). The paper's Algorithm 1 adds a
//! `mlp_cost` field to each entry; that field lives here as plain
//! architectural state, while the accumulation logic (the CCL) lives in
//! `mlpsim-core`.

use mlpsim_cache::addr::LineAddr;
use mlpsim_telemetry::{Event, SinkHandle};
use std::fmt;

/// Identifier of an allocated MSHR entry (a stable slot index).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MshrId(pub usize);

/// Error returned when allocation is attempted on a full MSHR file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MshrFull;

impl fmt::Display for MshrFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all MSHR entries are in use")
    }
}

impl std::error::Error for MshrFull {}

/// One in-flight miss.
#[derive(Clone, Copy, Debug)]
pub struct MshrEntry {
    /// The missing cache line.
    pub line: LineAddr,
    /// Cycle the entry was allocated.
    pub alloc_cycle: u64,
    /// Cycle the memory system will deliver the fill.
    pub done_cycle: u64,
    /// Whether this is a *demand* miss (instruction/load/store); only
    /// demand misses participate in MLP-cost accumulation (paper §3.1).
    pub is_demand: bool,
    /// The MLP-based cost accumulated so far, in cycles. Algorithm 1:
    /// starts at 0, grows by `1/N` per cycle while in flight.
    pub mlp_cost: f64,
    /// Number of merged requests (accesses to the same line while the miss
    /// was in flight); merged accesses do not allocate new entries.
    pub merged: u32,
}

/// The MSHR file: a fixed-capacity pool of in-flight misses with lookup by
/// line address (for miss merging).
///
/// # Example
///
/// ```
/// use mlpsim_mem::Mshr;
/// use mlpsim_cache::addr::LineAddr;
///
/// let mut mshr = Mshr::new(32);
/// let id = mshr.allocate(LineAddr(7), 0, 444, true).unwrap();
/// // A second access to the same line merges instead of re-requesting.
/// assert_eq!(mshr.lookup(LineAddr(7)), Some(id));
/// mshr.merge(id);
/// assert_eq!(mshr.entry(id).merged, 1);
/// let done = mshr.free(id);
/// assert_eq!(done.line, LineAddr(7));
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    slots: Vec<Option<MshrEntry>>,
    /// Compact `(line, slot)` index of live entries. Lines are unique among
    /// live entries (callers merge duplicates), so scanning this short list
    /// replaces an O(capacity) walk over `slots` on every [`Mshr::lookup`].
    lines: Vec<(LineAddr, usize)>,
    /// Cached earliest completion as `(done_cycle, slot)`, tie-broken by the
    /// lowest slot id. `done_cycle` is immutable after allocation, so the
    /// cache only changes on `allocate` (O(1) compare) and on `free` of the
    /// cached minimum itself (one O(capacity) rescan per fill, at most).
    earliest: Option<(u64, usize)>,
    live: usize,
    demand_live: usize,
    /// High-water mark of simultaneously live demand entries (instantaneous
    /// MLP observability, cf. Chou et al.'s definition cited in §2).
    peak_demand: usize,
    /// Telemetry sink; disabled (a null check) unless attached.
    sink: SinkHandle,
}

impl Mshr {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Mshr {
            slots: vec![None; capacity],
            lines: Vec::with_capacity(capacity),
            earliest: None,
            live: 0,
            demand_live: 0,
            peak_demand: 0,
            sink: SinkHandle::disabled(),
        }
    }

    /// Stream `mshr_alloc`/`mshr_release` events (with live occupancy)
    /// into `sink`. Occupancy over time is exactly reconstructible from
    /// these two event kinds.
    pub fn attach_sink(&mut self, sink: SinkHandle) {
        self.sink = sink;
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether every slot is in use.
    pub fn is_full(&self) -> bool {
        self.live == self.slots.len()
    }

    /// Number of live *demand* entries — the `N` of Algorithm 1.
    pub fn demand_count(&self) -> usize {
        self.demand_live
    }

    /// Highest simultaneous demand-entry count observed.
    pub fn peak_demand(&self) -> usize {
        self.peak_demand
    }

    /// Finds the live entry for `line`, if one exists (miss merging).
    ///
    /// O(live), not O(capacity): the scan runs over the compact line index,
    /// which is empty whenever nothing is in flight — the common case on
    /// the cache-hit fast path.
    pub fn lookup(&self, line: LineAddr) -> Option<MshrId> {
        self.lines
            .iter()
            .find(|&&(l, _)| l == line)
            .map(|&(_, slot)| MshrId(slot))
    }

    /// Allocates an entry for a new miss.
    ///
    /// # Errors
    ///
    /// Returns [`MshrFull`] when no slot is free; the caller must stall the
    /// request (the paper's window model naturally back-pressures).
    pub fn allocate(
        &mut self,
        line: LineAddr,
        alloc_cycle: u64,
        done_cycle: u64,
        is_demand: bool,
    ) -> Result<MshrId, MshrFull> {
        debug_assert!(
            self.lookup(line).is_none(),
            "caller must merge duplicate misses"
        );
        let idx = self
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(MshrFull)?;
        self.slots[idx] = Some(MshrEntry {
            line,
            alloc_cycle,
            done_cycle,
            is_demand,
            mlp_cost: 0.0,
            merged: 0,
        });
        self.lines.push((line, idx));
        // Lexicographic (done, slot) compare: earlier completions win, and
        // equal completions go to the lowest slot id (the fill-order
        // contract pinned by `next_completion_ties_break_to_lowest_slot`).
        if self.earliest.is_none_or(|cur| (done_cycle, idx) < cur) {
            self.earliest = Some((done_cycle, idx));
        }
        self.live += 1;
        if is_demand {
            self.demand_live += 1;
            self.peak_demand = self.peak_demand.max(self.demand_live);
        }
        self.sink.emit_with(|| Event::MshrAlloc {
            cycle: alloc_cycle,
            line: line.0,
            demand: is_demand,
            live: self.live as u64,
            demand_live: self.demand_live as u64,
            slot: idx as u64,
        });
        self.check_invariants();
        Ok(MshrId(idx))
    }

    /// Records a merged access on an existing entry.
    pub fn merge(&mut self, id: MshrId) {
        let e = self.entry_mut(id);
        e.merged += 1;
    }

    /// Promotes an existing non-demand entry to demand status (e.g. a
    /// prefetch that a demand access merged into). The `N` of Algorithm 1
    /// grows accordingly.
    pub fn promote_to_demand(&mut self, id: MshrId) {
        let e = self.slots[id.0].as_mut().expect("live MSHR entry");
        if !e.is_demand {
            e.is_demand = true;
            self.demand_live += 1;
            self.peak_demand = self.peak_demand.max(self.demand_live);
        }
        self.check_invariants();
    }

    /// Demotes a demand entry to non-demand status — the paper's
    /// wrong-path rule: "All misses are treated on correct path until
    /// they are confirmed to be on the wrong path. Misses on the wrong
    /// path are not counted as demand misses" (§3.1). The `N` of
    /// Algorithm 1 shrinks accordingly and the entry's accumulated cost is
    /// discarded by the fill path.
    pub fn demote_from_demand(&mut self, id: MshrId) {
        let e = self.slots[id.0].as_mut().expect("live MSHR entry");
        if e.is_demand {
            e.is_demand = false;
            self.demand_live -= 1;
        }
        self.check_invariants();
    }

    /// Shared access to a live entry.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn entry(&self, id: MshrId) -> &MshrEntry {
        self.slots[id.0].as_ref().expect("live MSHR entry")
    }

    /// Shared access to an entry that may already have been freed (used
    /// by deferred bookkeeping like wrong-path resolution).
    pub fn get(&self, id: MshrId) -> Option<&MshrEntry> {
        self.slots.get(id.0).and_then(Option::as_ref)
    }

    /// Exclusive access to a live entry.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn entry_mut(&mut self, id: MshrId) -> &mut MshrEntry {
        self.slots[id.0].as_mut().expect("live MSHR entry")
    }

    /// Frees a completed entry, returning it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free.
    pub fn free(&mut self, id: MshrId) -> MshrEntry {
        let e = self.slots[id.0].take().expect("live MSHR entry");
        let pos = self
            .lines
            .iter()
            .position(|&(_, slot)| slot == id.0)
            .expect("line index tracks every live entry");
        // Lines are unique, so lookup order does not matter: swap_remove.
        self.lines.swap_remove(pos);
        if self.earliest.is_some_and(|(_, slot)| slot == id.0) {
            self.earliest = self.iter().map(|(id, e)| (e.done_cycle, id.0)).min();
        }
        self.live -= 1;
        if e.is_demand {
            self.demand_live -= 1;
        }
        self.sink.emit_with(|| Event::MshrRelease {
            cycle: e.done_cycle,
            line: e.line.0,
            demand: e.is_demand,
            live: self.live as u64,
            cost: e.mlp_cost,
            slot: id.0 as u64,
        });
        self.check_invariants();
        e
    }

    /// Iterator over live entries.
    pub fn iter(&self) -> impl Iterator<Item = (MshrId, &MshrEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (MshrId(i), e)))
    }

    /// Mutable iterator over live entries (the CCL uses this to bump
    /// `mlp_cost` on every demand entry).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (MshrId, &mut MshrEntry)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|e| (MshrId(i), e)))
    }

    /// The earliest `done_cycle` among live entries, if any — the next fill
    /// event the simulator must wake up for. Ties between entries completing
    /// on the same cycle go to the lowest slot id, so the fill order is a
    /// stable function of allocation order.
    ///
    /// O(1): served from the cached minimum maintained by `allocate`/`free`
    /// (the event-driven core calls this on every time jump, so a linear
    /// scan here would put an O(capacity) walk back into the hot loop).
    pub fn next_completion(&self) -> Option<(MshrId, u64)> {
        self.earliest.map(|(done, slot)| (MshrId(slot), done))
    }

    /// Model check (under the `invariants` feature) after any occupancy
    /// change: the cached `live`/`demand_live` counters equal a recount of
    /// the slots (the `N` of Algorithm 1 must never drift), the peak never
    /// trails the current demand count, and every accumulated `mlp_cost` is
    /// finite and non-negative.
    #[cfg(feature = "invariants")]
    fn check_invariants(&self) {
        let live = self.slots.iter().filter(|s| s.is_some()).count();
        let demand = self
            .slots
            .iter()
            .filter(|s| s.as_ref().is_some_and(|e| e.is_demand))
            .count();
        crate::invariant!(
            self.live == live,
            "live counter must match a recount of occupied slots"
        );
        crate::invariant!(
            self.demand_live == demand,
            "demand-live counter is Algorithm 1's N and must never drift"
        );
        crate::invariant!(
            self.peak_demand >= self.demand_live,
            "peak demand is a high-water mark"
        );
        for e in self.slots.iter().flatten() {
            crate::invariant!(
                e.mlp_cost.is_finite() && e.mlp_cost >= 0.0,
                "mlp_cost accumulates non-negative finite increments"
            );
            crate::invariant!(
                e.done_cycle >= e.alloc_cycle,
                "a miss cannot complete before it was issued"
            );
        }
        crate::invariant!(
            self.lines.len() == live,
            "line index must hold exactly the live entries"
        );
        for &(line, slot) in &self.lines {
            crate::invariant!(
                self.slots[slot].as_ref().is_some_and(|e| e.line == line),
                "line index entries must point at matching live slots"
            );
        }
        let recomputed = self.iter().map(|(id, e)| (e.done_cycle, id.0)).min();
        crate::invariant!(
            self.earliest == recomputed,
            "cached earliest completion must match a full (done, slot) rescan"
        );
    }

    #[cfg(not(feature = "invariants"))]
    #[inline]
    fn check_invariants(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_free_cycle() {
        let mut m = Mshr::new(4);
        let a = m.allocate(LineAddr(1), 0, 444, true).unwrap();
        assert_eq!(m.lookup(LineAddr(1)), Some(a));
        assert_eq!(m.demand_count(), 1);
        assert_eq!(m.len(), 1);
        let e = m.free(a);
        assert_eq!(e.line, LineAddr(1));
        assert!(m.is_empty());
        assert_eq!(m.demand_count(), 0);
    }

    #[test]
    fn full_mshr_rejects_allocation() {
        let mut m = Mshr::new(2);
        m.allocate(LineAddr(1), 0, 10, true).unwrap();
        m.allocate(LineAddr(2), 0, 10, true).unwrap();
        assert!(m.is_full());
        assert_eq!(m.allocate(LineAddr(3), 0, 10, true), Err(MshrFull));
    }

    #[test]
    fn demand_count_ignores_non_demand() {
        let mut m = Mshr::new(4);
        m.allocate(LineAddr(1), 0, 10, true).unwrap();
        let wb = m.allocate(LineAddr(2), 0, 10, false).unwrap();
        assert_eq!(m.demand_count(), 1);
        assert_eq!(m.len(), 2);
        m.promote_to_demand(wb);
        assert_eq!(m.demand_count(), 2);
        m.promote_to_demand(wb); // idempotent
        assert_eq!(m.demand_count(), 2);
        m.demote_from_demand(wb);
        assert_eq!(m.demand_count(), 1);
        m.demote_from_demand(wb); // idempotent
        assert_eq!(m.demand_count(), 1);
    }

    #[test]
    fn peak_demand_tracks_high_water_mark() {
        let mut m = Mshr::new(4);
        let a = m.allocate(LineAddr(1), 0, 10, true).unwrap();
        let b = m.allocate(LineAddr(2), 0, 10, true).unwrap();
        m.free(a);
        m.free(b);
        m.allocate(LineAddr(3), 5, 10, true).unwrap();
        assert_eq!(m.peak_demand(), 2);
    }

    #[test]
    fn next_completion_finds_earliest() {
        let mut m = Mshr::new(4);
        m.allocate(LineAddr(1), 0, 300, true).unwrap();
        let b = m.allocate(LineAddr(2), 0, 100, true).unwrap();
        m.allocate(LineAddr(3), 0, 200, false).unwrap();
        assert_eq!(m.next_completion(), Some((b, 100)));
    }

    #[test]
    fn next_completion_ties_break_to_lowest_slot() {
        // Two entries completing on the same cycle: the lowest slot id must
        // win, before and after frees/reallocations churn the slot pool.
        // This pins the fill order the event-driven core relies on.
        let mut m = Mshr::new(4);
        let a = m.allocate(LineAddr(1), 0, 100, true).unwrap();
        let b = m.allocate(LineAddr(2), 0, 100, true).unwrap();
        assert_eq!((a, b), (MshrId(0), MshrId(1)));
        assert_eq!(m.next_completion(), Some((a, 100)));

        // Freeing the winner promotes the other same-cycle entry.
        m.free(a);
        assert_eq!(m.next_completion(), Some((b, 100)));

        // Reallocating the lower slot with the same done cycle takes the
        // tie back, even though it was allocated later.
        let c = m.allocate(LineAddr(3), 5, 100, true).unwrap();
        assert_eq!(c, MshrId(0));
        assert_eq!(m.next_completion(), Some((c, 100)));

        // An earlier completion still beats any tie.
        let d = m.allocate(LineAddr(4), 5, 99, false).unwrap();
        assert_eq!(m.next_completion(), Some((d, 99)));
        m.free(d);
        assert_eq!(m.next_completion(), Some((c, 100)));
    }

    #[test]
    fn lookup_tracks_frees_and_reallocations() {
        let mut m = Mshr::new(4);
        let a = m.allocate(LineAddr(10), 0, 50, true).unwrap();
        let b = m.allocate(LineAddr(20), 0, 60, true).unwrap();
        m.free(a);
        assert_eq!(m.lookup(LineAddr(10)), None);
        assert_eq!(m.lookup(LineAddr(20)), Some(b));
        let c = m.allocate(LineAddr(30), 1, 70, false).unwrap();
        assert_eq!(m.lookup(LineAddr(30)), Some(c));
        m.free(b);
        m.free(c);
        assert_eq!(m.lookup(LineAddr(20)), None);
        assert_eq!(m.lookup(LineAddr(30)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_counts_duplicate_requests() {
        let mut m = Mshr::new(2);
        let a = m.allocate(LineAddr(9), 0, 10, true).unwrap();
        m.merge(a);
        m.merge(a);
        assert_eq!(m.entry(a).merged, 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Mshr::new(0);
    }
}
