//! The memory controller: DRAM banks behind a split-transaction bus.

use crate::bus::{Bus, BusStats};
use crate::config::MemConfig;
use crate::dram::{DramBanks, DramStats};
use mlpsim_cache::addr::LineAddr;
use serde::{Deserialize, Serialize};

/// Aggregated memory-system statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand fills requested.
    pub fills: u64,
    /// Writebacks absorbed.
    pub writebacks: u64,
    /// Sum of fill latencies (for mean-latency reporting).
    pub total_fill_latency: u64,
    /// DRAM-level statistics.
    pub dram: DramStats,
    /// Bus-level statistics.
    pub bus: BusStats,
}

impl MemStats {
    /// Mean fill latency in cycles (0 when no fills occurred).
    pub fn mean_fill_latency(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.total_fill_latency as f64 / self.fills as f64
        }
    }
}

/// The off-chip memory system: request scheduling across banks and the
/// shared response bus.
///
/// With the baseline [`MemConfig`], a request issued in isolation at cycle
/// `t` completes at `t + 444` — the paper's isolated-miss latency. Requests
/// to distinct banks overlap their 400-cycle DRAM portion and serialize
/// only on the 16-cycle data-bus transfer, which is what makes parallel
/// misses cheap per miss.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    dram: DramBanks,
    bus: Bus,
    stats_fills: u64,
    stats_writebacks: u64,
    stats_total_latency: u64,
}

impl MemorySystem {
    /// Creates a memory system from a configuration.
    pub fn new(config: MemConfig) -> Self {
        MemorySystem {
            dram: DramBanks::new(config.banks, config.dram_access_cycles),
            bus: Bus::new(config.bus_fixed_cycles, config.bus_transfer_cycles),
            stats_fills: 0,
            stats_writebacks: 0,
            stats_total_latency: 0,
        }
    }

    /// Issues a demand fill for `line` at cycle `now`; returns the cycle
    /// the line arrives at the cache.
    pub fn request_fill(&mut self, line: LineAddr, now: u64) -> u64 {
        mlpsim_telemetry::prof_scope!(Dram);
        let data_ready = self.dram.schedule(line, now);
        let done = self.bus.schedule_transfer(data_ready);
        self.stats_fills += 1;
        // `done >= now`: schedule never completes before the request.
        let latency = done.wrapping_sub(now);
        self.stats_total_latency = self.stats_total_latency.saturating_add(latency);
        done
    }

    /// Absorbs a writeback of `line` issued at cycle `now`. Writebacks
    /// occupy a DRAM bank (creating conflicts with demand fills) but use
    /// the write half of the split-transaction bus, which we do not model
    /// as contended.
    pub fn writeback(&mut self, line: LineAddr, now: u64) {
        self.dram.schedule(line, now);
        self.stats_writebacks += 1;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            fills: self.stats_fills,
            writebacks: self.stats_writebacks,
            total_fill_latency: self.stats_total_latency,
            dram: *self.dram.stats(),
            bus: *self.bus.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_fill_takes_444_cycles() {
        let mut m = MemorySystem::new(MemConfig::baseline());
        let done = m.request_fill(LineAddr(0), 1000);
        assert_eq!(done, 1444);
        assert_eq!(m.stats().mean_fill_latency(), 444.0);
    }

    #[test]
    fn four_parallel_fills_cost_little_more_than_one() {
        let mut m = MemorySystem::new(MemConfig::baseline());
        // Four concurrent misses to distinct banks.
        let dones: Vec<u64> = (0..4).map(|i| m.request_fill(LineAddr(i), 0)).collect();
        assert_eq!(dones, vec![444, 460, 476, 492]);
        // All four finish within 492 cycles instead of 4 * 444 = 1776 —
        // the amortization that motivates the whole paper.
        assert!(dones[3] < 2 * 444);
    }

    #[test]
    fn same_bank_fills_serialize_fully() {
        let mut m = MemorySystem::new(MemConfig::baseline());
        let t0 = m.request_fill(LineAddr(0), 0);
        let t1 = m.request_fill(LineAddr(32), 0); // same bank (32 banks)
        assert_eq!(t0, 444);
        assert_eq!(t1, 844); // 400 bank wait + 444
    }

    #[test]
    fn writebacks_steal_bank_time() {
        let mut m = MemorySystem::new(MemConfig::baseline());
        m.writeback(LineAddr(0), 0);
        let t = m.request_fill(LineAddr(32), 0); // same bank as the writeback
        assert_eq!(t, 844);
        assert_eq!(m.stats().writebacks, 1);
        assert_eq!(m.stats().fills, 1);
    }

    #[test]
    fn mean_latency_of_no_fills_is_zero() {
        let m = MemorySystem::new(MemConfig::baseline());
        assert_eq!(m.stats().mean_fill_latency(), 0.0);
    }
}
