#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Memory-system substrate: MSHR, DRAM banks, split-transaction bus.
//!
//! This crate models everything below the L2 cache in the paper's baseline
//! machine (Table 2):
//!
//! * a 32-entry Miss Status Holding Register file ([`mshr`]) with miss
//!   merging and a per-entry `mlp_cost` accumulator field — the storage the
//!   paper's Algorithm 1 adds,
//! * 32 DRAM banks with a 400-cycle access latency and bank-conflict
//!   queueing ([`dram`]),
//! * a 16-byte-wide split-transaction bus at a 4:1 frequency ratio modeled
//!   as a 44-cycle unloaded delay with 16 cycles of occupancy per line
//!   transfer ([`bus`]),
//! * a [`controller`] tying them together: an isolated miss completes in
//!   exactly 400 + 44 = 444 cycles, the number the paper quotes throughout.
//!
//! The MLP-based *interpretation* of the `mlp_cost` field lives in
//! `mlpsim-core`; this crate only provides the architectural state.

/// Model-checking assertion for the MSHR bookkeeping invariants (live and
/// demand-live counters match a recount of the slots, `mlp_cost` stays
/// finite and non-negative). Compiled to a real `assert!` only under the
/// `invariants` feature; a no-op (zero cost, in release and debug alike)
/// otherwise. See DESIGN.md §10.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// No-op twin of the `invariants`-enabled assertion (feature disabled).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {};
}

pub mod bus;
pub mod config;
pub mod controller;
pub mod dram;
pub mod mshr;

pub use config::MemConfig;
pub use controller::{MemStats, MemorySystem};
pub use mshr::{Mshr, MshrEntry, MshrFull, MshrId};
