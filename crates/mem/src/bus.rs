//! Split-transaction bus model.

use serde::{Deserialize, Serialize};

/// Statistics collected by the [`Bus`] model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusStats {
    /// Line transfers completed.
    pub transfers: u64,
    /// Total cycles transfers waited for the bus to free up.
    pub contention_cycles: u64,
}

/// A split-transaction data bus.
///
/// The paper's bus is 16 bytes wide at a 4:1 CPU:bus frequency ratio, so a
/// 64-byte line occupies the bus for 16 CPU cycles; the remaining
/// `fixed_cycles` of the quoted 44-cycle bus delay (request transfer,
/// arbitration, command) do not occupy the data bus and therefore pipeline
/// across concurrent misses. Transfers are serialized on the data bus,
/// which bounds peak MLP exactly as a real bus would.
#[derive(Clone, Debug)]
pub struct Bus {
    fixed_cycles: u64,
    transfer_cycles: u64,
    free_at: u64,
    stats: BusStats,
}

impl Bus {
    /// Creates a bus with the given fixed latency and per-transfer
    /// occupancy.
    pub fn new(fixed_cycles: u64, transfer_cycles: u64) -> Self {
        Bus {
            fixed_cycles,
            transfer_cycles,
            free_at: 0,
            stats: BusStats::default(),
        }
    }

    /// Schedules the response transfer for data that becomes available at
    /// the memory side at cycle `data_ready`; returns the cycle the full
    /// line has arrived at the cache.
    pub fn schedule_transfer(&mut self, data_ready: u64) -> u64 {
        let earliest = data_ready.saturating_add(self.fixed_cycles);
        let start = earliest.max(self.free_at);
        if start > earliest {
            // `start > earliest` makes the subtraction exact.
            let waited = start.wrapping_sub(earliest);
            self.stats.contention_cycles = self.stats.contention_cycles.saturating_add(waited);
        }
        let done = start.saturating_add(self.transfer_cycles);
        self.free_at = done;
        self.stats.transfers += 1;
        done
    }

    /// Unloaded end-to-end bus delay (fixed portion plus one transfer).
    pub fn unloaded_delay(&self) -> u64 {
        self.fixed_cycles.saturating_add(self.transfer_cycles)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_transfer_takes_44_cycles_at_baseline() {
        let mut b = Bus::new(28, 16);
        assert_eq!(b.unloaded_delay(), 44);
        assert_eq!(b.schedule_transfer(400), 444);
    }

    #[test]
    fn concurrent_transfers_serialize_on_data_bus() {
        let mut b = Bus::new(28, 16);
        let t0 = b.schedule_transfer(400);
        let t1 = b.schedule_transfer(400);
        assert_eq!(t0, 444);
        assert_eq!(t1, 460); // waits 16 cycles for the bus
        assert_eq!(b.stats().contention_cycles, 16);
        assert_eq!(b.stats().transfers, 2);
    }

    #[test]
    fn clock_saturates_instead_of_wrapping_near_u64_max() {
        // The spelled-out bounds (D7): a transfer scheduled at the end of
        // representable time pins at u64::MAX instead of wrapping into
        // the past (which would un-serialize the bus).
        let mut b = Bus::new(28, 16);
        let done = b.schedule_transfer(u64::MAX - 10);
        assert_eq!(done, u64::MAX);
        let later = b.schedule_transfer(u64::MAX - 10);
        assert_eq!(later, u64::MAX, "free_at stays pinned, never regresses");
    }

    #[test]
    fn spaced_transfers_do_not_contend() {
        let mut b = Bus::new(28, 16);
        b.schedule_transfer(0);
        let t = b.schedule_transfer(1000);
        assert_eq!(t, 1044);
        assert_eq!(b.stats().contention_cycles, 0);
    }
}
