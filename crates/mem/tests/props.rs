#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property-based tests for the memory-system substrate.

use mlpsim_cache::addr::LineAddr;
use mlpsim_mem::bus::Bus;
use mlpsim_mem::dram::DramBanks;
use mlpsim_mem::{MemConfig, MemorySystem, Mshr};
use proptest::prelude::*;

proptest! {
    /// Every fill completes no earlier than the unloaded isolated-miss
    /// latency and bank/bus service is work-conserving (completion times
    /// per bank are strictly increasing).
    #[test]
    fn fill_latency_lower_bound(reqs in prop::collection::vec((0u64..4096, 0u64..50), 1..100)) {
        let cfg = MemConfig::baseline();
        let mut mem = MemorySystem::new(cfg);
        let mut now = 0u64;
        for &(line, dt) in &reqs {
            now += dt;
            let done = mem.request_fill(LineAddr(line), now);
            prop_assert!(done >= now + cfg.isolated_miss_cycles());
        }
        let stats = mem.stats();
        prop_assert_eq!(stats.fills, reqs.len() as u64);
        prop_assert!(stats.mean_fill_latency() >= cfg.isolated_miss_cycles() as f64);
    }

    /// Per-bank completions are serialized and monotone.
    #[test]
    fn banks_serialize(reqs in prop::collection::vec(0u64..64, 1..200)) {
        let mut dram = DramBanks::new(8, 100);
        let mut last_done_per_bank = [0u64; 8];
        for (i, &line) in reqs.iter().enumerate() {
            let done = dram.schedule(LineAddr(line), i as u64);
            let bank = dram.bank_of(LineAddr(line));
            prop_assert!(done > last_done_per_bank[bank]);
            prop_assert!(done >= i as u64 + 100);
            last_done_per_bank[bank] = done;
        }
    }

    /// The shared bus never overlaps two transfers.
    #[test]
    fn bus_transfers_never_overlap(ready_times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut bus = Bus::new(28, 16);
        let mut dones: Vec<u64> = ready_times.iter().map(|&t| bus.schedule_transfer(t)).collect();
        dones.sort_unstable();
        for w in dones.windows(2) {
            prop_assert!(w[1] - w[0] >= 16, "transfers occupy 16 exclusive cycles");
        }
    }

    /// The demand-miss count — Algorithm 1's `N` divisor — tracks
    /// promotions and demotions exactly, not just allocations and frees.
    /// Run with `--features invariants` every mutation here also recounts
    /// the slot array against the cached counters.
    #[test]
    fn demand_divisor_tracks_promotions(
        ops in prop::collection::vec((0u8..4, 0usize..16), 1..300)
    ) {
        let mut m = Mshr::new(16);
        let mut next = 0u64;
        for &(op, pick) in &ops {
            match op {
                0 if !m.is_full() => {
                    m.allocate(LineAddr(next), 0, next + 444, pick % 2 == 0).unwrap();
                    next += 1;
                }
                1 if !m.is_empty() => {
                    let ids: Vec<_> = m.iter().map(|(id, _)| id).collect();
                    m.promote_to_demand(ids[pick % ids.len()]);
                }
                2 if !m.is_empty() => {
                    let ids: Vec<_> = m.iter().map(|(id, _)| id).collect();
                    m.demote_from_demand(ids[pick % ids.len()]);
                }
                _ if !m.is_empty() => {
                    let ids: Vec<_> = m.iter().map(|(id, _)| id).collect();
                    m.free(ids[pick % ids.len()]);
                }
                _ => {}
            }
            let recount = m.iter().filter(|(_, e)| e.is_demand).count();
            prop_assert_eq!(m.demand_count(), recount,
                "cached divisor must equal a recount of demand slots");
            prop_assert!(m.peak_demand() >= m.demand_count());
        }
    }

    /// MSHR occupancy accounting survives arbitrary alloc/free
    /// interleavings.
    #[test]
    fn mshr_accounting(ops in prop::collection::vec((prop::bool::ANY, 0usize..16, prop::bool::ANY), 1..300)) {
        let mut m = Mshr::new(16);
        let mut next = 0u64;
        for &(alloc, pick, demand) in &ops {
            if alloc && !m.is_full() {
                m.allocate(LineAddr(next), 0, next + 444, demand).unwrap();
                next += 1;
            } else if !m.is_empty() {
                let ids: Vec<_> = m.iter().map(|(id, _)| id).collect();
                m.free(ids[pick % ids.len()]);
            }
            let demand_count = m.iter().filter(|(_, e)| e.is_demand).count();
            prop_assert_eq!(m.demand_count(), demand_count);
            prop_assert_eq!(m.len(), m.iter().count());
            prop_assert!(m.peak_demand() >= m.demand_count());
        }
    }
}
