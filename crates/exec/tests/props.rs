#![allow(clippy::unwrap_used)] // test/bench code: panics are failures, not bugs

//! Property tests for the ordered worker pool: for any job list, any
//! thread count, and any per-job completion skew, `map_ordered` must
//! return exactly the serial `map` result.

use mlpsim_exec::{map_ordered, WorkerPool};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The pool is observationally equivalent to `Vec::into_iter().map()`.
    #[test]
    fn ordered_results_match_serial_map(
        values in prop::collection::vec(0u64..1_000, 0..48),
        threads in 1usize..9,
    ) {
        let expected: Vec<u64> = values.iter().map(|v| v.wrapping_mul(2654435761)).collect();
        let jobs: Vec<_> = values
            .iter()
            .map(|&v| {
                move || {
                    // Skew completion order: make *earlier* submissions
                    // finish later, the worst case for naive collection.
                    std::thread::sleep(Duration::from_micros((v % 7) * 50));
                    v.wrapping_mul(2654435761)
                }
            })
            .collect();
        let got = map_ordered(threads, jobs);
        prop_assert_eq!(got, expected);
    }

    /// A reused pool keeps its ordering guarantee across batches.
    #[test]
    fn pool_reuse_keeps_ordering(
        batch_a in prop::collection::vec(0u32..500, 1..24),
        batch_b in prop::collection::vec(0u32..500, 1..24),
        threads in 1usize..5,
    ) {
        let pool = WorkerPool::new(threads);
        let a_jobs: Vec<_> = batch_a.iter().map(|&v| move || v + 1).collect();
        let b_jobs: Vec<_> = batch_b.iter().map(|&v| move || v * 3).collect();
        let got_a = pool.map_ordered(a_jobs);
        let got_b = pool.map_ordered(b_jobs);
        prop_assert_eq!(got_a, batch_a.iter().map(|&v| v + 1).collect::<Vec<_>>());
        prop_assert_eq!(got_b, batch_b.iter().map(|&v| v * 3).collect::<Vec<_>>());
    }
}
