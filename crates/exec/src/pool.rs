//! The worker pool and its ordered fan-out helper.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "MLPSIM_JOBS";

/// The default worker count: `MLPSIM_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when even that is
/// unknowable). A set-but-useless `MLPSIM_JOBS` — empty, `0`, or garbage —
/// falls back to the hardware default *with a warning on stderr*: a sweep
/// silently running serial (or at an unintended width) because of a typo'd
/// variable would defeat the point of the pool.
pub fn default_jobs() -> usize {
    let raw = std::env::var(JOBS_ENV).ok();
    let (explicit, warning) = jobs_from_var(raw.as_deref());
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    explicit.unwrap_or_else(|| thread::available_parallelism().map_or(1, usize::from))
}

/// Pure resolution of the `MLPSIM_JOBS` value: the explicitly requested
/// worker count (if the value is a positive integer), plus the warning the
/// caller should surface when the variable is set but unusable. `None`
/// input means the variable is unset — no count, no warning.
pub fn jobs_from_var(raw: Option<&str>) -> (Option<usize>, Option<String>) {
    let Some(raw) = raw else {
        return (None, None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return (
            None,
            Some(format!(
                "{JOBS_ENV} is set but empty; using the hardware default"
            )),
        );
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => (Some(n), None),
        Ok(_) => (
            None,
            Some(format!(
                "ignoring {JOBS_ENV}=0 (want a positive integer); using the hardware default"
            )),
        ),
        Err(_) => (
            None,
            Some(format!(
                "ignoring invalid {JOBS_ENV}={raw:?} (want a positive integer); \
                 using the hardware default"
            )),
        ),
    }
}

/// Cooperative cancellation flag shared between a job's submitter and the
/// pool workers (and, in the serving layer, a deadline watchdog). The
/// token carries no clock — deadlines are built *on top* by whoever owns
/// wall time (lint rule D2 keeps this crate clock-free): a watchdog thread
/// sleeps, then calls [`CancelToken::cancel`].
///
/// Cancellation is observed at job granularity by
/// [`WorkerPool::try_map_ordered`] (a worker checks the token before
/// starting each queued job) and may additionally be polled from inside a
/// job closure for finer-grained early exit.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Error returned by [`WorkerPool::try_map_ordered`] when the token fired
/// before every job ran: `completed` of `submitted` jobs finished (their
/// results are discarded — a partial ordered map is not a meaningful
/// sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// Jobs that ran to completion before the token was observed.
    pub completed: usize,
    /// Total jobs submitted to the batch.
    pub submitted: usize,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cancelled after {} of {} jobs completed",
            self.completed, self.submitted
        )
    }
}

impl std::error::Error for Cancelled {}

/// Per-job timing hook for [`WorkerPool::try_map_ordered_spanned`]: the
/// serving layer passes one to turn every matrix cell into a trace span.
///
/// The clock is *injected* as a plain function pointer — this crate stays
/// clock-free (lint rule D2), exactly like [`CancelToken`] keeps deadlines
/// out of the pool. `record(idx, start, end)` is called on the worker
/// thread right after job `idx` finishes, with two readings of `clock`
/// bracketing the job body; it must be cheap and must not panic.
#[derive(Clone)]
pub struct SpanHook {
    /// Monotonic nanosecond source (the caller owns wall time).
    pub clock: fn() -> u64,
    /// Sink for `(submission index, start_ns, end_ns)` of each job run.
    pub record: Arc<dyn Fn(usize, u64, u64) + Send + Sync>,
}

impl fmt::Debug for SpanHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanHook").finish_non_exhaustive()
    }
}

/// A boxed unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads pulling [`Job`]s from a shared queue.
///
/// Determinism contract: the pool itself imposes *no* ordering on job
/// execution — only [`WorkerPool::map_ordered`] does, by tagging each job
/// with its submission index and reassembling results by tag. Jobs must
/// therefore not communicate through shared mutable state.
///
/// Dropping the pool closes the queue and joins every worker, so queued
/// work always finishes before the pool goes away.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("mlpsim-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_jobs() -> Self {
        Self::new(default_jobs())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues one fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool queue open until drop")
            .send(Box::new(job))
            .expect("a worker holds the receiver until the queue closes");
    }

    /// Runs every job on the pool and returns their results **in
    /// submission order**, however the workers interleave. This is the
    /// primitive that makes parallel sweeps reproduce serial output
    /// byte-for-byte.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is re-raised here (after the remaining
    /// jobs were still handed to workers), mirroring the serial behavior
    /// of the same loop.
    pub fn map_ordered<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match self.try_map_ordered(jobs, &CancelToken::new()) {
            Ok(out) => out,
            Err(_) => unreachable!("a private fresh token is never cancelled"),
        }
    }

    /// [`WorkerPool::map_ordered`] with cooperative cancellation: each
    /// worker consults `cancel` immediately before starting a queued job
    /// and skips it once the token fired. When every job ran, the result
    /// is exactly `map_ordered`'s — byte-identical sweeps, same panic
    /// propagation. When any job was skipped, returns [`Cancelled`]
    /// (partial results are discarded; jobs already executing when the
    /// token fires still run to completion unless they poll the token
    /// themselves).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before every job started.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by submission index) panicking job's payload,
    /// as [`WorkerPool::map_ordered`] does.
    pub fn try_map_ordered<T, F>(
        &self,
        jobs: Vec<F>,
        cancel: &CancelToken,
    ) -> Result<Vec<T>, Cancelled>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.try_map_ordered_spanned(jobs, cancel, None)
    }

    /// [`WorkerPool::try_map_ordered`] with an optional per-job timing
    /// hook: when `hook` is given, each job body is bracketed by two
    /// `hook.clock` readings and reported through `hook.record` with its
    /// submission index. Results, ordering, cancellation, and panic
    /// propagation are identical to the unhooked form — the hook observes
    /// jobs, it never alters them (skipped-by-cancellation jobs are not
    /// reported).
    ///
    /// # Errors
    ///
    /// [`Cancelled`] when the token fired before every job started.
    ///
    /// # Panics
    ///
    /// Re-raises the first (by submission index) panicking job's payload.
    pub fn try_map_ordered_spanned<T, F>(
        &self,
        jobs: Vec<F>,
        cancel: &CancelToken,
        hook: Option<&SpanHook>,
    ) -> Result<Vec<T>, Cancelled>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        // `None` in the payload marks a job skipped by cancellation.
        let (tx, rx) = channel::<(usize, Option<thread::Result<T>>)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            let cancel = cancel.clone();
            let hook = hook.cloned();
            self.submit(move || {
                if cancel.is_cancelled() {
                    let _ = tx.send((idx, None));
                    return;
                }
                // Catch so one bad cell doesn't kill the worker thread and
                // strand the rest of the queue; the panic is re-raised on
                // the submitting thread below.
                let out = match &hook {
                    Some(h) => {
                        let t0 = (h.clock)();
                        let out = catch_unwind(AssertUnwindSafe(job));
                        (h.record)(idx, t0, (h.clock)());
                        out
                    }
                    None => catch_unwind(AssertUnwindSafe(job)),
                };
                let _ = tx.send((idx, Some(out)));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Option<thread::Result<T>>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = rx.recv().expect("every job sends exactly once");
            crate::invariant!(
                idx < n && slots[idx].is_none(),
                "each submission index is delivered exactly once"
            );
            slots[idx] = Some(out);
        }
        let delivered: Vec<Option<thread::Result<T>>> = slots
            .into_iter()
            .map(|slot| slot.expect("all indices delivered"))
            .collect();
        if delivered.iter().any(Option::is_none) {
            // Re-raise a panic even on the cancelled path: a crashed cell
            // must not be masked by a concurrent cancellation.
            let completed = delivered
                .into_iter()
                .flatten()
                .map(|out| {
                    if let Err(payload) = out {
                        resume_unwind(payload);
                    }
                })
                .count();
            return Err(Cancelled {
                completed,
                submitted: n,
            });
        }
        Ok(delivered
            .into_iter()
            .map(
                |slot| match slot.expect("checked above: no job was skipped") {
                    Ok(v) => v,
                    Err(payload) => resume_unwind(payload),
                },
            )
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only to *receive*; run the job unlocked so other
        // workers keep pulling.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked inside recv(); give up
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // queue closed and drained
        }
    }
}

/// One-shot convenience: run `jobs` on a transient pool of `threads`
/// workers and return the results in submission order.
pub fn map_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    WorkerPool::new(threads).map_ordered(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_submission_order() {
        let pool = WorkerPool::new(4);
        // Reverse sleep times so later jobs finish first.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    thread::sleep(std::time::Duration::from_millis((16 - i) % 5));
                    i * i
                }
            })
            .collect();
        let out = pool.map_ordered(jobs);
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_is_just_a_loop() {
        let out = map_ordered(1, (0..8).map(|i| move || i + 1).collect());
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u8> = map_ordered(3, Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || c.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let pool = WorkerPool::new(8);
        let out = pool.map_ordered(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        // Each job observed a distinct pre-increment value.
        let mut seen = out.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn panicking_job_propagates_without_stranding_others() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::clone(&ran);
        let r2 = Arc::clone(&ran);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_ordered(vec![
                Box::new(move || {
                    r1.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>,
                Box::new(|| panic!("cell exploded")),
                Box::new(move || {
                    r2.fetch_add(1, Ordering::SeqCst);
                }),
            ])
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool survives and still executes fresh work.
        let after = pool.map_ordered(vec![|| 7]);
        assert_eq!(after, vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_ordered(vec![|| 1]), vec![1]);
    }

    // ---- MLPSIM_JOBS resolution (pure; default_jobs is a thin shell) ----

    #[test]
    fn jobs_var_unset_is_silent() {
        assert_eq!(jobs_from_var(None), (None, None));
    }

    #[test]
    fn jobs_var_valid_is_used_without_warning() {
        assert_eq!(jobs_from_var(Some("4")), (Some(4), None));
        assert_eq!(jobs_from_var(Some(" 12 ")), (Some(12), None));
    }

    #[test]
    fn jobs_var_empty_warns() {
        for empty in ["", "   ", "\t"] {
            let (n, warn) = jobs_from_var(Some(empty));
            assert_eq!(n, None, "{empty:?}");
            let warn = warn.expect("set-but-empty must warn, not silently fall back");
            assert!(warn.contains("set but empty"), "{warn}");
        }
    }

    #[test]
    fn jobs_var_zero_warns() {
        let (n, warn) = jobs_from_var(Some("0"));
        assert_eq!(n, None);
        assert!(warn.expect("zero must warn").contains("MLPSIM_JOBS=0"));
    }

    #[test]
    fn jobs_var_garbage_warns() {
        for garbage in ["many", "-3", "4.5", "3 threads"] {
            let (n, warn) = jobs_from_var(Some(garbage));
            assert_eq!(n, None, "{garbage:?}");
            let warn = warn.expect("garbage must warn");
            assert!(warn.contains(garbage), "{warn}");
        }
    }

    // ---- cancellation ----

    #[test]
    fn fresh_token_matches_map_ordered() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..20u64).map(|i| move || i * 3).collect();
        let got = pool.try_map_ordered(jobs, &CancelToken::new());
        assert_eq!(got, Ok((0..20u64).map(|i| i * 3).collect::<Vec<_>>()));
    }

    #[test]
    fn pre_cancelled_token_skips_every_job() {
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let ran = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&ran);
                move || r.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let pool = WorkerPool::new(2);
        let err = pool
            .try_map_ordered(jobs, &token)
            .expect_err("a fired token must cancel the batch");
        assert_eq!(err.completed, 0);
        assert_eq!(err.submitted, 8);
        assert_eq!(ran.load(Ordering::SeqCst), 0, "no job may start");
    }

    #[test]
    fn mid_batch_cancel_reports_partial_completion() {
        // Single worker, and the first job fires the token itself: the
        // remaining jobs are deterministically skipped.
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        let t = token.clone();
        let mut jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![Box::new(move || {
            t.cancel();
            1
        })];
        for i in 0..5u64 {
            jobs.push(Box::new(move || i + 100));
        }
        let err = pool
            .try_map_ordered(jobs, &token)
            .expect_err("token fired mid-batch");
        assert_eq!(
            err,
            Cancelled {
                completed: 1,
                submitted: 6
            }
        );
    }

    #[test]
    fn panic_is_not_masked_by_cancellation() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        let t = token.clone();
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(move || {
                t.cancel();
                panic!("boom under cancellation")
            }),
            Box::new(|| 2),
        ];
        let result = catch_unwind(AssertUnwindSafe(|| pool.try_map_ordered(jobs, &token)));
        assert!(result.is_err(), "the panic must surface, not the Cancelled");
    }

    // ---- span hook ----

    #[test]
    fn span_hook_reports_every_job_without_changing_results() {
        let pool = WorkerPool::new(4);
        let spans: Arc<Mutex<Vec<(usize, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&spans);
        // A deterministic "clock": each reading advances by one.
        fn tick() -> u64 {
            static T: AtomicUsize = AtomicUsize::new(0);
            T.fetch_add(1, Ordering::SeqCst) as u64
        }
        let hook = SpanHook {
            clock: tick,
            record: Arc::new(move |idx, t0, t1| {
                sink.lock().expect("span sink").push((idx, t0, t1));
            }),
        };
        let jobs: Vec<_> = (0..12u64).map(|i| move || i * 2).collect();
        let out = pool
            .try_map_ordered_spanned(jobs, &CancelToken::new(), Some(&hook))
            .expect("fresh token");
        assert_eq!(out, (0..12u64).map(|i| i * 2).collect::<Vec<_>>());
        let mut got = spans.lock().expect("span sink").clone();
        got.sort_unstable();
        assert_eq!(got.len(), 12, "one span per job");
        let idxs: Vec<usize> = got.iter().map(|s| s.0).collect();
        assert_eq!(idxs, (0..12).collect::<Vec<_>>());
        assert!(got.iter().all(|&(_, t0, t1)| t1 > t0), "end after start");
    }

    #[test]
    fn span_hook_skips_cancelled_jobs() {
        let pool = WorkerPool::new(1);
        let token = CancelToken::new();
        token.cancel();
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let hook = SpanHook {
            clock: || 0,
            record: Arc::new(move |_, _, _| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        };
        let jobs: Vec<_> = (0..4u64).map(|i| move || i).collect();
        let err = pool.try_map_ordered_spanned(jobs, &token, Some(&hook));
        assert!(err.is_err());
        assert_eq!(count.load(Ordering::SeqCst), 0, "skipped jobs have no span");
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
    }
}
