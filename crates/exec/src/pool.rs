//! The worker pool and its ordered fan-out helper.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "MLPSIM_JOBS";

/// The default worker count: `MLPSIM_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when even that is
/// unknowable). An unparsable `MLPSIM_JOBS` falls back to the hardware
/// default with a warning on stderr — a sweep silently running serial
/// because of a typo'd variable would defeat the point of the pool.
pub fn default_jobs() -> usize {
    if let Ok(raw) = std::env::var(JOBS_ENV) {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => {
                eprintln!("warning: ignoring invalid {JOBS_ENV}={raw:?} (want a positive integer)")
            }
        }
    }
    thread::available_parallelism().map_or(1, usize::from)
}

/// A boxed unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads pulling [`Job`]s from a shared queue.
///
/// Determinism contract: the pool itself imposes *no* ordering on job
/// execution — only [`WorkerPool::map_ordered`] does, by tagging each job
/// with its submission index and reassembling results by tag. Jobs must
/// therefore not communicate through shared mutable state.
///
/// Dropping the pool closes the queue and joins every worker, so queued
/// work always finishes before the pool goes away.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("mlpsim-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// A pool sized by [`default_jobs`].
    pub fn with_default_jobs() -> Self {
        Self::new(default_jobs())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues one fire-and-forget job.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool queue open until drop")
            .send(Box::new(job))
            .expect("a worker holds the receiver until the queue closes");
    }

    /// Runs every job on the pool and returns their results **in
    /// submission order**, however the workers interleave. This is the
    /// primitive that makes parallel sweeps reproduce serial output
    /// byte-for-byte.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is re-raised here (after the remaining
    /// jobs were still handed to workers), mirroring the serial behavior
    /// of the same loop.
    pub fn map_ordered<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, thread::Result<T>)>();
        for (idx, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(move || {
                // Catch so one bad cell doesn't kill the worker thread and
                // strand the rest of the queue; the panic is re-raised on
                // the submitting thread below.
                let out = catch_unwind(AssertUnwindSafe(job));
                let _ = tx.send((idx, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, out) = rx.recv().expect("every job sends exactly once");
            crate::invariant!(
                idx < n && slots[idx].is_none(),
                "each submission index is delivered exactly once"
            );
            slots[idx] = Some(out);
        }
        slots
            .into_iter()
            .map(|slot| match slot.expect("all indices delivered") {
                Ok(v) => v,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.tx.take()); // close the queue: workers drain then exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only to *receive*; run the job unlocked so other
        // workers keep pulling.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling panicked inside recv(); give up
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // queue closed and drained
        }
    }
}

/// One-shot convenience: run `jobs` on a transient pool of `threads`
/// workers and return the results in submission order.
pub fn map_ordered<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    WorkerPool::new(threads).map_ordered(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_submission_order() {
        let pool = WorkerPool::new(4);
        // Reverse sleep times so later jobs finish first.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    thread::sleep(std::time::Duration::from_millis((16 - i) % 5));
                    i * i
                }
            })
            .collect();
        let out = pool.map_ordered(jobs);
        assert_eq!(out, (0..16u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_is_just_a_loop() {
        let out = map_ordered(1, (0..8).map(|i| move || i + 1).collect());
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn empty_job_list() {
        let out: Vec<u8> = map_ordered(3, Vec::<fn() -> u8>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || c.fetch_add(1, Ordering::SeqCst)
            })
            .collect();
        let pool = WorkerPool::new(8);
        let out = pool.map_ordered(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        // Each job observed a distinct pre-increment value.
        let mut seen = out.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn panicking_job_propagates_without_stranding_others() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let r1 = Arc::clone(&ran);
        let r2 = Arc::clone(&ran);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_ordered(vec![
                Box::new(move || {
                    r1.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>,
                Box::new(|| panic!("cell exploded")),
                Box::new(move || {
                    r2.fetch_add(1, Ordering::SeqCst);
                }),
            ])
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool survives and still executes fresh work.
        let after = pool.map_ordered(vec![|| 7]);
        assert_eq!(after, vec![7]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map_ordered(vec![|| 1]), vec![1]);
    }
}
