#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! Deterministic parallel execution for simulation sweeps.
//!
//! The experiment layer evaluates a matrix of benchmarks × policies; every
//! cell is an independent, CPU-bound, deterministic simulation. This crate
//! provides the one primitive that parallelizes such a matrix **without
//! changing any observable output**: a hand-rolled worker pool
//! ([`WorkerPool`]) whose [`WorkerPool::map_ordered`] returns results in
//! *submission* order regardless of completion order.
//!
//! Hand-rolled (`std::thread` + `std::sync::mpsc`) rather than a rayon
//! dependency because the build is offline with vendored deps only — and
//! because the whole contract fits in a page: jobs go in ordered, results
//! come out ordered, a panicking job panics the caller.
//!
//! The worker count defaults to [`std::thread::available_parallelism`],
//! overridable with the `MLPSIM_JOBS` environment variable or the
//! experiment binaries' `--jobs N` flag (see [`default_jobs`]).

/// Model-checking assertion for the worker-pool ordering contract (one
/// result per submitted job, reassembled in submission order). Compiled to
/// a real `assert!` only under the `invariants` feature; a no-op (zero
/// cost, in release and debug alike) otherwise. See DESIGN.md §10.
#[cfg(feature = "invariants")]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// No-op twin of the `invariants`-enabled assertion (feature disabled).
#[cfg(not(feature = "invariants"))]
#[macro_export]
macro_rules! invariant {
    ($($arg:tt)*) => {};
}

pub mod pool;

pub use pool::{
    default_jobs, jobs_from_var, map_ordered, CancelToken, Cancelled, SpanHook, WorkerPool,
    JOBS_ENV,
};
