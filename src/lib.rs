//! # mlpsim — MLP-Aware Cache Replacement, reproduced
//!
//! A from-scratch Rust reproduction of *"A Case for MLP-Aware Cache
//! Replacement"* (Qureshi, Lynch, Mutlu, Patt — ISCA 2006 /
//! TR-HPS-2006-3), including every substrate the paper's evaluation needs:
//! a trace-driven out-of-order timing model, a two-level cache hierarchy,
//! an MSHR/DRAM/bus memory system, the run-time MLP-based cost
//! computation, the LIN replacement policy, and the SBAR/CBS hybrid
//! replacement mechanisms.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`cache`] — set-associative tag stores, the replacement-engine
//!   framework, and the LRU / FIFO / Random / Belady-OPT baselines.
//! * [`mem`] — the MSHR (with MLP-cost accumulation hooks), DRAM banks,
//!   bus, and memory controller.
//! * [`core`] — the paper's contribution: the cost-calculation logic
//!   (Algorithm 1), cost quantization, LIN, PSEL, leader-set selection,
//!   SBAR and CBS.
//! * [`cpu`] — the out-of-order window model and the full [`System`]
//!   wiring.
//! * [`trace`] — trace records and the synthetic SPEC-CPU2000-like
//!   workload generators.
//! * [`analysis`] — histograms, delta analysis, the binomial leader-set
//!   sampling model, and table rendering.
//! * [`telemetry`] — the zero-cost probe layer: typed events, counter
//!   registry, and NDJSON event streams (see the README's
//!   "Observability" section).
//!
//! # Quickstart
//!
//! ```
//! use mlpsim::cpu::{PolicyKind, System, SystemConfig};
//! use mlpsim::trace::spec::SpecBench;
//!
//! // Simulate a small slice of the mcf-like workload under LRU and LIN.
//! let trace = SpecBench::Mcf.generate(20_000, 42);
//! let lru = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
//! let lin = System::new(SystemConfig::baseline(PolicyKind::lin4())).run(trace.iter());
//! assert!(lin.ipc() > 0.0 && lru.ipc() > 0.0);
//! ```
//!
//! [`System`]: cpu::system::System

pub use mlpsim_analysis as analysis;
pub use mlpsim_cache as cache;
pub use mlpsim_core as core;
pub use mlpsim_cpu as cpu;
pub use mlpsim_mem as mem;
pub use mlpsim_telemetry as telemetry;
pub use mlpsim_trace as trace;
