//! Property-based integration tests: invariants that must hold for any
//! access stream, checked across the crate boundaries with proptest.

use mlpsim::cache::addr::{Geometry, LineAddr};
use mlpsim::cache::belady::BeladyEngine;
use mlpsim::cache::lru::LruEngine;
use mlpsim::cache::model::CacheModel;
use mlpsim::core::lin::LinEngine;
use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::record::{Access, AccessKind, Trace};
use proptest::prelude::*;

/// A compact random trace: lines from a small universe so reuse happens,
/// gaps spanning the isolated/parallel boundary.
fn arb_trace(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..512, prop::bool::ANY, 0u32..256), 1..max_len).prop_map(|v| {
        v.into_iter()
            .map(|(line, store, gap)| Access {
                line,
                kind: if store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
                gap,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Belady's OPT never misses more than LRU or LIN on the same stream.
    #[test]
    fn opt_is_miss_optimal(trace in arb_trace(400)) {
        let geom = Geometry::from_sets(8, 2, 64);
        let lines: Vec<LineAddr> = trace.iter().map(|a| LineAddr(a.line)).collect();
        let mut opt = CacheModel::new(geom, Box::new(BeladyEngine::from_accesses(lines)));
        let mut lru = CacheModel::new(geom, Box::new(LruEngine::new()));
        let mut lin = CacheModel::new(geom, Box::new(LinEngine::paper_default()));
        for (i, a) in trace.iter().enumerate() {
            let line = LineAddr(a.line);
            opt.access(line, false, i as u64);
            lru.access(line, false, i as u64);
            let r = lin.access(line, false, i as u64);
            if !r.hit {
                lin.record_serviced_cost(line, (a.line % 8) as u8);
            }
        }
        prop_assert!(opt.stats().misses <= lru.stats().misses);
        prop_assert!(opt.stats().misses <= lin.stats().misses);
    }

    /// The full system retires exactly the trace's instructions, counts
    /// are consistent, and IPC never exceeds the machine width.
    #[test]
    fn conservation_laws(trace in arb_trace(300)) {
        let expected_insts = trace.instructions();
        let r = System::new(SystemConfig::baseline(PolicyKind::lin4())).run(trace.iter());
        prop_assert_eq!(r.instructions, expected_insts);
        prop_assert!(r.ipc() <= 8.0 + 1e-9);
        // Hits + misses = accesses at each level; L2 sees exactly the L1
        // misses.
        prop_assert_eq!(r.l1.accesses(), trace.len() as u64);
        prop_assert_eq!(r.l2.accesses(), r.l1.misses);
        // Every serviced miss got a cost sample, and misses were serviced
        // at most once per L2 miss (merging can only reduce).
        prop_assert!(r.cost_hist.count() <= r.l2.misses);
        prop_assert_eq!(r.mem.fills, r.cost_hist.count());
        // Compulsory misses cannot exceed distinct lines or total misses.
        prop_assert!(r.l2_compulsory <= trace.unique_lines());
        prop_assert!(r.l2_compulsory <= r.l2.misses);
    }

    /// Every miss's MLP-based cost lies in (0, isolated-cost + conflict
    /// slack] and the mean is positive when misses exist.
    #[test]
    fn cost_bounds(trace in arb_trace(300)) {
        let mut cfg = SystemConfig::baseline(PolicyKind::Lru);
        cfg.collect_miss_log = true;
        let r = System::new(cfg).run(trace.iter());
        for &(_, cost) in &r.miss_log {
            prop_assert!(cost > 0.0, "a serviced miss accrues time");
            // 512-line universe over 32 banks can conflict; even a fully
            // serialized 32-deep bank queue stays under 32 * 444.
            prop_assert!(cost <= 32.0 * 444.0);
        }
    }

    /// LIN with lambda = 0 is cycle-for-cycle identical to LRU on the full
    /// system (the paper: "LRU is a special case of the LIN policy").
    #[test]
    fn lin_zero_is_lru(trace in arb_trace(250)) {
        let a = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
        let b = System::new(SystemConfig::baseline(PolicyKind::Lin { lambda: 0 }))
            .run(trace.iter());
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.l2.misses, b.l2.misses);
        prop_assert_eq!(a.l2.hits, b.l2.hits);
    }

    /// Simulation is a pure function of (trace, config): re-running gives
    /// bit-identical results, including for the seeded-random policy.
    #[test]
    fn determinism(trace in arb_trace(250)) {
        for policy in [PolicyKind::Random { seed: 5 }, PolicyKind::sbar_default()] {
            let a = System::new(SystemConfig::baseline(policy)).run(trace.iter());
            let b = System::new(SystemConfig::baseline(policy)).run(trace.iter());
            prop_assert_eq!(a.cycles, b.cycles);
            prop_assert_eq!(a.l2.misses, b.l2.misses);
            prop_assert_eq!(a.stall_episodes, b.stall_episodes);
            prop_assert_eq!(a.cost_hist, b.cost_hist);
        }
    }

    /// Stall accounting is physical: memory stalls are a subset of
    /// full-window stalls, and cycles at least cover the retire-width
    /// lower bound.
    #[test]
    fn stall_accounting(trace in arb_trace(300)) {
        let r = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
        prop_assert!(r.mem_stall_cycles <= r.full_window_stall_cycles);
        prop_assert!(r.cycles >= r.instructions / 8);
        prop_assert!(r.peak_mlp <= 32, "MSHR bounds outstanding demand misses");
    }
}
