//! Integration tests for trace generation determinism and serialization.

use mlpsim::trace::io::{read_trace, write_trace};
use mlpsim::trace::record::{Access, AccessKind, Trace};
use mlpsim::trace::spec::SpecBench;
use mlpsim::trace::stats::TraceSummary;
use proptest::prelude::*;

#[test]
fn generated_traces_round_trip_through_the_text_format() {
    for bench in [SpecBench::Art, SpecBench::Mgrid, SpecBench::Parser] {
        let t = bench.generate(3_000, 11);
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back, "{bench}");
    }
}

#[test]
fn summaries_are_stable_across_regeneration() {
    for bench in SpecBench::ALL {
        let a = TraceSummary::of(&bench.generate(2_000, 5));
        let b = TraceSummary::of(&bench.generate(2_000, 5));
        assert_eq!(a, b, "{bench}");
    }
}

#[test]
fn distinct_seeds_give_distinct_streams_for_randomized_benchmarks() {
    // mcf uses random region walks; different seeds must differ.
    let a = SpecBench::Mcf.generate(2_000, 1);
    let b = SpecBench::Mcf.generate(2_000, 2);
    assert_ne!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_traces_round_trip(accesses in prop::collection::vec(
        (0u64..u64::MAX / 2, prop::bool::ANY, 0u32..100_000),
        0..200,
    )) {
        let t: Trace = accesses
            .into_iter()
            .map(|(line, store, gap)| Access {
                line,
                kind: if store { AccessKind::Store } else { AccessKind::Load },
                gap,
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        prop_assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }

    #[test]
    fn summary_identities(accesses in prop::collection::vec(
        (0u64..1024, prop::bool::ANY, 0u32..500),
        0..300,
    )) {
        let t: Trace = accesses
            .into_iter()
            .map(|(line, store, gap)| Access {
                line,
                kind: if store { AccessKind::Store } else { AccessKind::Load },
                gap,
            })
            .collect();
        let s = TraceSummary::of(&t);
        prop_assert_eq!(s.loads + s.stores, s.accesses);
        prop_assert!(s.unique_lines <= s.accesses);
        prop_assert!(s.instructions >= s.accesses);
        prop_assert!(s.window_breaks <= s.accesses);
    }
}
