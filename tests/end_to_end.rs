//! End-to-end integration tests: the full system (trace generation →
//! OoO core → caches → MSHR/CCL → DRAM) reproducing the paper's headline
//! claims.

use mlpsim::cache::addr::{Geometry, LineAddr};
use mlpsim::cache::belady::BeladyEngine;
use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::figure1::{figure1_lines, figure1_trace};
use mlpsim::trace::spec::SpecBench;

fn run_bench(bench: SpecBench, policy: PolicyKind, accesses: usize) -> mlpsim::cpu::SimResult {
    let trace = bench.generate(accesses, 42);
    System::new(SystemConfig::baseline(policy)).run(trace.iter())
}

#[test]
fn figure1_reproduces_the_papers_exact_counts() {
    let iterations = 100;
    let trace = figure1_trace(iterations);
    let cache = Geometry::from_sets(1, 4, 64);
    let cfg = |policy| {
        let mut c = SystemConfig::baseline(policy);
        c.l1 = None;
        c.l2 = cache;
        c
    };
    let opt = System::with_l2_engine(
        cfg(PolicyKind::Lru),
        Box::new(BeladyEngine::from_accesses(
            figure1_lines(iterations).into_iter().map(LineAddr),
        )),
    )
    .run(trace.iter());
    let lru = System::new(cfg(PolicyKind::Lru)).run(trace.iter());
    let lin = System::new(cfg(PolicyKind::lin4())).run(trace.iter());

    let per_iter = |x: u64| (x as f64 / iterations as f64).round() as u64;
    // Paper: OPT 4 misses / 4 stalls; LRU 6 / 4; MLP-aware 6 / 2.
    assert_eq!(per_iter(opt.l2.misses), 4);
    assert_eq!(per_iter(opt.stall_episodes), 4);
    assert_eq!(per_iter(lru.l2.misses), 6);
    assert_eq!(per_iter(lru.stall_episodes), 4);
    assert_eq!(per_iter(lin.l2.misses), 6);
    assert_eq!(per_iter(lin.stall_episodes), 2);
    // And the punchline: LIN finishes the loop faster than the
    // miss-optimal oracle.
    assert!(
        lin.cycles < opt.cycles,
        "lin {} vs opt {}",
        lin.cycles,
        opt.cycles
    );
    assert!(lin.cycles < lru.cycles);
}

#[test]
fn lin_helps_the_papers_winners() {
    for bench in [
        SpecBench::Mcf,
        SpecBench::Vpr,
        SpecBench::Sixtrack,
        SpecBench::Art,
    ] {
        let lru = run_bench(bench, PolicyKind::Lru, 150_000);
        let lin = run_bench(bench, PolicyKind::lin4(), 150_000);
        assert!(
            lin.ipc() > lru.ipc() * 1.02,
            "{bench}: LIN {:.3} should clearly beat LRU {:.3}",
            lin.ipc(),
            lru.ipc()
        );
    }
}

#[test]
fn lin_hurts_the_papers_losers() {
    for bench in [SpecBench::Parser, SpecBench::Mgrid] {
        let lru = run_bench(bench, PolicyKind::Lru, 150_000);
        let lin = run_bench(bench, PolicyKind::lin4(), 150_000);
        assert!(
            lin.ipc() < lru.ipc() * 0.98,
            "{bench}: LIN {:.3} should clearly lose to LRU {:.3}",
            lin.ipc(),
            lru.ipc()
        );
    }
}

#[test]
fn sbar_limits_lin_degradation() {
    // "The most important contribution of SBAR is that it eliminates the
    // performance degradation caused by LIN" — SBAR must stay within a few
    // percent of LRU on the LIN-hostile benchmarks.
    for bench in [SpecBench::Parser, SpecBench::Mgrid] {
        let lru = run_bench(bench, PolicyKind::Lru, 200_000);
        let lin = run_bench(bench, PolicyKind::lin4(), 200_000);
        let sbar = run_bench(bench, PolicyKind::sbar_default(), 200_000);
        assert!(sbar.ipc() > lin.ipc(), "{bench}: SBAR must beat pure LIN");
        assert!(
            sbar.ipc() > lru.ipc() * 0.90,
            "{bench}: SBAR {:.3} must stay near LRU {:.3}",
            sbar.ipc(),
            lru.ipc()
        );
    }
}

#[test]
fn sbar_beats_both_pure_policies_on_phased_workloads() {
    let lru = run_bench(SpecBench::Ammp, PolicyKind::Lru, 420_000);
    let lin = run_bench(SpecBench::Ammp, PolicyKind::lin4(), 420_000);
    let sbar = run_bench(SpecBench::Ammp, PolicyKind::sbar_default(), 420_000);
    assert!(
        sbar.ipc() > lru.ipc(),
        "ammp: SBAR {:.3} vs LRU {:.3}",
        sbar.ipc(),
        lru.ipc()
    );
    assert!(
        sbar.ipc() > lin.ipc(),
        "ammp: SBAR {:.3} vs LIN {:.3}",
        sbar.ipc(),
        lin.ipc()
    );
}

#[test]
fn mlp_cost_distribution_is_bench_specific() {
    // Fig. 2's qualitative content: art is parallel-dominated, twolf is
    // isolated-heavy, facerec carries a pair peak.
    let art = run_bench(SpecBench::Art, PolicyKind::Lru, 150_000);
    let twolf = run_bench(SpecBench::Twolf, PolicyKind::Lru, 150_000);
    assert!(
        art.cost_hist.percent(7) < 5.0,
        "art has almost no isolated misses"
    );
    assert!(twolf.cost_hist.percent(7) > 10.0, "twolf is isolated-heavy");
    assert!(art.cost_hist.mean() < twolf.cost_hist.mean());
}

#[test]
fn unpredictable_benchmarks_have_large_deltas() {
    // Table 1's discriminator, measured on the live system.
    let sixtrack = run_bench(SpecBench::Sixtrack, PolicyKind::Lru, 150_000);
    let mgrid = run_bench(SpecBench::Mgrid, PolicyKind::Lru, 420_000);
    assert!(
        sixtrack.deltas.pct_lt60() > 95.0,
        "sixtrack is deterministic"
    );
    assert!(
        mgrid.deltas.average() > 100.0,
        "mgrid's costs flip between phases"
    );
}

#[test]
fn isolated_miss_latency_is_the_papers_444_cycles() {
    use mlpsim::trace::record::{Access, Trace};
    let trace = Trace::from_accesses(vec![Access::load(1, 400), Access::load((1 << 21) + 3, 400)]);
    let r = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
    assert_eq!(r.l2.misses, 2);
    assert!((r.mean_cost() - 444.0).abs() < 0.5);
}

#[test]
fn all_optional_substrates_compose() {
    use mlpsim::cpu::icache::IcacheConfig;
    use mlpsim::cpu::prefetch::PrefetchConfig;
    use mlpsim::cpu::wrongpath::WrongPathConfig;
    let trace = SpecBench::Mcf.generate(20_000, 3);
    let mut cfg = SystemConfig::baseline(PolicyKind::sbar_default());
    cfg.icache = Some(IcacheConfig::baseline(64));
    cfg.wrong_path = Some(WrongPathConfig::baseline());
    cfg.prefetch = Some(PrefetchConfig { degree: 2 });
    cfg.sample_interval = Some(200_000);
    cfg.collect_miss_log = true;
    let r = System::new(cfg).run(trace.iter());
    assert_eq!(r.instructions, trace.instructions());
    assert!(r.ipc() > 0.0 && r.ipc() <= 8.0);
    assert!(r.icache.accesses() > 0);
    assert!(r.wrong_path_accesses > 0);
    assert!(r.prefetches_issued > 0);
    assert_eq!(r.miss_log.len() as u64, r.cost_hist.count());
    assert!(!r.samples.is_empty());
}

#[test]
fn every_policy_runs_every_benchmark() {
    // Smoke coverage of the full matrix at small scale.
    for bench in SpecBench::ALL {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random { seed: 3 },
            PolicyKind::lin4(),
            PolicyKind::sbar_default(),
            PolicyKind::CbsLocal,
            PolicyKind::CbsGlobal,
        ] {
            let r = run_bench(bench, policy, 4_000);
            assert!(r.ipc() > 0.0 && r.ipc() <= 8.0, "{bench}/{}", r.policy);
            assert_eq!(
                r.instructions,
                bench.generate(4_000, 42).instructions(),
                "all instructions must retire"
            );
        }
    }
}
