//! End-to-end telemetry invariants: run real workloads with a probe
//! attached and check that the emitted event stream is internally
//! consistent — ordering, pairing, and cross-subsystem agreement with the
//! simulator's own statistics.

use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::telemetry::{Event, EventSink, SinkHandle, SinkProbe, VecSink};
use mlpsim::trace::spec::SpecBench;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Runs `bench` under `policy` with a collecting probe; returns the event
/// stream and the run's results.
fn run_with_events(
    bench: SpecBench,
    policy: PolicyKind,
    accesses: usize,
) -> (Vec<Event>, mlpsim::cpu::stats::SimResult) {
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let dyn_sink: Arc<Mutex<dyn EventSink + Send>> = Arc::clone(&sink) as _;
    let probe = SinkProbe::new(SinkHandle::shared(dyn_sink));
    let trace = bench.generate(accesses, 42);
    let result = System::with_probe(SystemConfig::baseline(policy), probe).run(trace.iter());
    let events = std::mem::take(&mut sink.lock().unwrap().events);
    (events, result)
}

#[test]
fn stream_is_bracketed_and_counts_agree_with_stats() {
    let (events, r) = run_with_events(SpecBench::Mcf, PolicyKind::Lru, 4_000);
    assert!(matches!(events.first(), Some(Event::RunStart { .. })));
    assert!(matches!(events.last(), Some(Event::RunEnd { .. })));
    let count = |k: &str| events.iter().filter(|e| e.kind() == k).count() as u64;
    assert_eq!(count("cache_miss"), r.l2.misses);
    assert_eq!(count("cache_hit"), r.l2.hits);
    assert_eq!(count("stall"), r.stall_episodes);
    // Victim events fire only for evictions out of full sets.
    assert_eq!(count("cache_victim"), r.l2.evictions);
    match events.last().unwrap() {
        Event::RunEnd {
            instructions,
            l2_misses,
            peak_mlp,
            ..
        } => {
            assert_eq!(*instructions, r.instructions);
            assert_eq!(*l2_misses, r.l2.misses);
            assert_eq!(*peak_mlp, r.peak_mlp as u64);
        }
        _ => unreachable!(),
    }
}

#[test]
fn mshr_release_never_precedes_allocate() {
    let (events, r) = run_with_events(SpecBench::Art, PolicyKind::Lru, 6_000);
    // Track in-flight lines; a release for a line that is not in flight
    // would mean the stream (or the MSHR) re-ordered allocate/release.
    let mut in_flight: HashMap<u64, u64> = HashMap::new();
    let mut peak_demand = 0u64;
    let mut allocs = 0u64;
    let mut releases = 0u64;
    for ev in &events {
        match ev {
            Event::MshrAlloc {
                line,
                live,
                demand_live,
                ..
            } => {
                *in_flight.entry(*line).or_default() += 1;
                allocs += 1;
                peak_demand = peak_demand.max(*demand_live);
                assert_eq!(
                    *live,
                    in_flight.values().sum::<u64>(),
                    "alloc live count disagrees with event-reconstructed occupancy"
                );
            }
            Event::MshrMerge { line, .. } => {
                assert!(
                    in_flight.contains_key(line),
                    "merge into line not in flight"
                );
            }
            Event::MshrRelease { line, live, .. } => {
                let n = in_flight.get_mut(line).unwrap_or_else(|| {
                    panic!("release of line {line:#x} with no preceding allocate")
                });
                *n -= 1;
                if *n == 0 {
                    in_flight.remove(line);
                }
                releases += 1;
                assert_eq!(*live, in_flight.values().sum::<u64>());
            }
            _ => {}
        }
    }
    assert!(allocs > 0);
    assert_eq!(allocs, releases, "every miss eventually completes");
    assert!(in_flight.is_empty(), "stream ends with all misses serviced");
    assert_eq!(
        peak_demand, r.peak_mlp as u64,
        "peak MLP reconstructible from stream"
    );
}

#[test]
fn every_serviced_line_missed_first_and_costs_match_quantization() {
    let (events, _) = run_with_events(SpecBench::Mcf, PolicyKind::lin4(), 4_000);
    let mut missed: HashMap<u64, u64> = HashMap::new();
    for ev in &events {
        match ev {
            Event::CacheMiss { line, .. } => *missed.entry(*line).or_default() += 1,
            Event::Serviced {
                line, cost, cost_q, ..
            } => {
                assert!(
                    missed.get(line).copied().unwrap_or(0) > 0,
                    "serviced line {line:#x} never missed"
                );
                assert_eq!(*cost_q, mlpsim::core::quant::quantize(*cost));
            }
            _ => {}
        }
    }
}

#[test]
fn psel_flips_pair_with_updates_and_divergences() {
    for policy in [
        PolicyKind::sbar_default(),
        PolicyKind::CbsLocal,
        PolicyKind::CbsGlobal,
    ] {
        let (events, _) = run_with_events(SpecBench::Ammp, policy, 40_000);
        let mut updates: HashMap<String, u64> = HashMap::new();
        let mut divergences: HashMap<String, u64> = HashMap::new();
        let mut update_seqs: Vec<(String, u64)> = Vec::new();
        let mut flips = 0u64;
        for ev in &events {
            match ev {
                Event::PselUpdate { unit, seq, .. } => {
                    *updates.entry(unit.clone()).or_default() += 1;
                    update_seqs.push((unit.clone(), *seq));
                }
                Event::LeaderDivergence { unit, .. } => {
                    *divergences.entry(unit.clone()).or_default() += 1;
                }
                Event::PselFlip { unit, seq, .. } => {
                    flips += 1;
                    // A flip is only ever the consequence of an update; the
                    // immediately preceding update carries the same stamp.
                    let last = update_seqs
                        .iter()
                        .rev()
                        .find(|(u, _)| u == unit)
                        .expect("flip without any update");
                    assert_eq!((&last.0, last.1), (unit, *seq), "flip/update seq mismatch");
                }
                _ => {}
            }
        }
        assert!(
            !updates.is_empty(),
            "{}: adaptive policy must duel",
            policy.label()
        );
        assert_eq!(
            updates,
            divergences,
            "{}: one update per divergent miss",
            policy.label()
        );
        // Phased ammp makes every adaptive scheme change its mind at least
        // once; a zero here means flips are not being detected at all.
        assert!(
            flips > 0,
            "{}: no PSEL flips over a phased workload",
            policy.label()
        );
    }
}

#[test]
fn disabled_and_enabled_runs_simulate_identically() {
    // The probe must be observation-only: attaching it cannot change any
    // architectural outcome.
    let trace = SpecBench::Ammp.generate(30_000, 42);
    let plain = System::new(SystemConfig::baseline(PolicyKind::sbar_default())).run(trace.iter());
    let sink = Arc::new(Mutex::new(VecSink::new()));
    let dyn_sink: Arc<Mutex<dyn EventSink + Send>> = Arc::clone(&sink) as _;
    let probed = System::with_probe(
        SystemConfig::baseline(PolicyKind::sbar_default()),
        SinkProbe::new(SinkHandle::shared(dyn_sink)),
    )
    .run(trace.iter());
    assert_eq!(plain.cycles, probed.cycles);
    assert_eq!(plain.instructions, probed.instructions);
    assert_eq!(plain.l2, probed.l2);
    assert_eq!(plain.peak_mlp, probed.peak_mlp);
    assert!(!sink.lock().unwrap().events.is_empty());
}
