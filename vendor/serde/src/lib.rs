//! Offline stand-in for `serde`.
//!
//! The build sandbox cannot reach crates.io, and the workspace only uses
//! serde as `#[derive(Serialize, Deserialize)]` annotations on plain-old-
//! data types — nothing constructs a serde `Serializer`/`Deserializer`.
//! This crate supplies marker traits under the expected names and re-
//! exports the no-op derives from the sibling `serde_derive` stub, so every
//! `use serde::{Deserialize, Serialize}` in the workspace resolves in both
//! the type and macro namespaces.
//!
//! If real serde serialization is ever needed, swap the path dependencies
//! in the workspace `Cargo.toml` back to the crates.io versions; the
//! annotation surface is compatible.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (never implemented by the
/// no-op derive; present so trait-position uses still name-resolve).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
