//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build sandbox has no crates.io access, and the workspace only uses a
//! narrow slice of rand: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer ranges. This crate reimplements that
//! slice faithfully: `SmallRng` is the same xoshiro256++ generator the real
//! crate uses on 64-bit targets, seeded through the same splitmix64
//! expansion, and `random_range` uses the same widening-multiply with
//! Lemire rejection. Determinism contract: the same seed always yields the
//! same stream across runs and machines (the trace generators and
//! `PolicyKind::Random` rely on this).

/// Seedable random generators (API parity with `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed. Deterministic.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface (API parity with the subset of `rand::Rng` the
/// workspace uses).
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits. For 64-bit generators the high
    /// half is used (xoshiro's low bits have weak linear structure).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample uniformly from `range` (half-open `start..end`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types usable as the argument of [`Rng::random_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<G: Rng>(self, rng: &mut G) -> Self::Output;
}

/// Uniform draw from `[0, range)` over a 32-bit sample space using the
/// widening multiply, rejecting draws in the biased zone.
fn sample_u32_below<G: Rng>(rng: &mut G, range: u32) -> u32 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        let lo = m as u32;
        if lo <= zone {
            return (m >> 32) as u32;
        }
    }
}

/// Same, over the full 64-bit sample space.
fn sample_u64_below<G: Rng>(rng: &mut G, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_32 {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(
                    self.start < self.end,
                    "random_range: empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i64 - self.start as i64) as u32;
                let off = sample_u32_below(rng, span);
                (self.start as i64 + off as i64) as $t
            }
        }
    )*};
}

impl_sample_range_32!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_sample_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<G: Rng>(self, rng: &mut G) -> $t {
                assert!(
                    self.start < self.end,
                    "random_range: empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_64!(u64, usize, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<G: Rng>(self, rng: &mut G) -> f64 {
        let frac = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + frac * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, non-cryptographic generator: xoshiro256++, the same
    /// algorithm `rand 0.9` uses for `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the full state, as in
            // rand_core's default `seed_from_u64`.
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0usize..5);
            assert!(w < 5);
            let b: u8 = rng.random_range(0u8..2);
            assert!(b < 2);
        }
    }

    #[test]
    fn range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
    }

    #[test]
    fn matches_xoshiro256plusplus_reference() {
        // First outputs for state (1, 2, 3, 4) from the public
        // xoshiro256++ reference implementation.
        let mut rng = SmallRng { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }
}
