//! Offline no-op stand-in for `serde_derive`.
//!
//! The sandbox this workspace builds in has no access to crates.io, so the
//! real `serde_derive` cannot be fetched. Nothing in the workspace actually
//! serializes through serde's data model (the NDJSON telemetry layer in
//! `mlpsim-telemetry` hand-rolls its encoding precisely to stay
//! dependency-free), so the derives only need to *exist* — they expand to
//! nothing. The `serde` attribute is accepted and ignored so container
//! attributes keep compiling if they are ever added.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
