//! Offline stand-in for `criterion` (API subset used by `crates/bench`).
//!
//! The build sandbox has no crates.io access, so this crate provides the
//! same bench-authoring surface (`Criterion`, `benchmark_group`,
//! `bench_function`, `Bencher::iter`, `Throughput`, `criterion_group!`,
//! `criterion_main!`) backed by a simple `Instant`-based harness: each
//! benchmark is warmed up, auto-batched until a batch takes long enough to
//! time reliably, sampled N times, and reported as the median ns/iteration
//! on stdout. No statistical analysis, plots, or baselines — the numbers
//! are indicative, which is all the in-repo overhead assertions need.

use std::time::Instant;

/// Per-element/byte throughput annotation; reported alongside the median.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    median_ns: f64,
}

const SAMPLES_DEFAULT: usize = 15;
const MIN_BATCH_NS: u128 = 2_000_000; // grow batches until they take >= 2ms

impl Bencher {
    /// Time `f`, auto-batching so each sample is long enough to measure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and initial calibration.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos();
            if elapsed >= MIN_BATCH_NS || batch >= 1 << 24 {
                break;
            }
            let grow = MIN_BATCH_NS
                .checked_div(elapsed)
                .map_or(16, |g| (g + 1).min(16) as u64);
            batch = batch.saturating_mul(grow.max(2));
        }

        let mut samples: Vec<f64> = Vec::with_capacity(SAMPLES_DEFAULT);
        for _ in 0..SAMPLES_DEFAULT {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

fn report(id: &str, median_ns: f64, throughput: Option<Throughput>) {
    let per_second = match throughput {
        Some(Throughput::Elements(n)) if median_ns > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / median_ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
            format!("  ({:.1} MB/s)", n as f64 / median_ns * 1e3)
        }
        _ => String::new(),
    };
    println!("bench {id:<48} median {median_ns:>12.1} ns/iter{per_second}");
}

/// Top-level bench driver (subset of the upstream builder API).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        report(&id, b.median_ns, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stub harness sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher { median_ns: 0.0 };
        f(&mut b);
        report(&id, b.median_ns, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.finish();
    }
}
