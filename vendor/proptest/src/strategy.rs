//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree: `gen_value` samples a
/// concrete value directly, and failing cases are reported un-shrunk.
pub trait Strategy {
    type Value;

    /// Sample one value using the deterministic per-case RNG.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Upstream proptest interprets `&str` as a regex strategy producing
/// `String`s. This stub supports the pattern shape the workspace uses —
/// a single character class with a bounded repeat, `[<chars>]{m,n}`,
/// where the class may contain literal characters and `a-z`-style
/// ranges. Any other pattern is generated as the literal string itself.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, min, max)) => {
                assert!(!chars.is_empty(), "empty character class in {self:?}");
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parse `[<class>]{m,n}` (or `{m}`) into (alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars: Vec<char> = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i], cs[i + 2]);
            for c in (lo as u32)..=(hi as u32) {
                chars.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if min > max {
        return None;
    }
    Some((chars, min, max))
}

/// `prop::bool` namespace.
pub mod bool {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (upstream `prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `prop::collection` namespace.
pub mod collection {
    use super::Strategy;
    use crate::test_runner::TestRng;

    /// Length bounds for [`vec`], convertible from the range forms the
    /// upstream API accepts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Result of [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::collection::vec;
    use super::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("strategy::ranges", 0);
        for _ in 0..1_000 {
            let v = (5u64..17).gen_value(&mut rng);
            assert!((5..17).contains(&v));
            let f = (0.0f64..2.5).gen_value(&mut rng);
            assert!((0.0..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_case("strategy::vec", 0);
        let s = vec((0u32..4, super::bool::ANY), 1..20);
        for _ in 0..500 {
            let v = s.gen_value(&mut rng);
            assert!((1..20).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_case("strategy::map", 0);
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.gen_value(&mut rng) % 2, 0);
        }
    }
}
