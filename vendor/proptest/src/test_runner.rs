//! Configuration and the deterministic per-case RNG.

/// Per-`proptest!` block configuration (subset of upstream).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising the strategies broadly. Tests that want more pass
        // `ProptestConfig::with_cases(..)` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 RNG, seeded from (test name, case index) so
/// every run of every machine generates the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the fully qualified test name, then mix in the case
        // index so consecutive cases are decorrelated.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform draw from `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = TestRng::for_case("mod::prop", 3);
        let mut b = TestRng::for_case("mod::prop", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_cases_diverge() {
        let mut a = TestRng::for_case("mod::prop", 0);
        let mut b = TestRng::for_case("mod::prop", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
