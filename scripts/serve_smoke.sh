#!/usr/bin/env bash
# End-to-end smoke for mlpsim-serve, exercising the cross-process pieces
# the in-crate tests cannot: separate server/client binaries, a real
# `kill -9` mid-queue, and a restart that must lose nothing.
#
#   1. HTTP-submitted fig5 result is byte-identical to the CLI binary,
#      and the live /metrics scrape carries the job-latency histograms.
#   2. Live event stream carries parseable run brackets.
#   3. Cancel works against a running job.
#   4. A zero-capacity queue rejects submissions with 429.
#   5. kill -9 with a 10-job queue, restart: every job is recovered and
#      completes; the pre-crash completed result is re-served unchanged.
#
# Run from the repository root: scripts/serve_smoke.sh

set -euo pipefail

BIN=target/release
WORK=$(mktemp -d)

cleanup() {
    if [ -f "$WORK/pids" ]; then
        while read -r pid; do
            kill "$pid" 2>/dev/null || true
        done <"$WORK/pids"
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

cargo build --release -q -p mlpsim-serve -p mlpsim-experiments

# Start a server, wait for its "listening on" line, echo the URL. Runs in
# a command substitution (subshell), so the pid is handed back through
# files rather than variables.
start_server() { # args: logfile, extra flags...
    local log=$1
    shift
    "$BIN/mlpsim-serve" --addr 127.0.0.1:0 "$@" >"$log" 2>&1 &
    echo $! >>"$WORK/pids"
    echo $! >"$WORK/last.pid"
    local url=""
    for _ in $(seq 1 100); do
        url=$(grep -oE 'http://[0-9.]+:[0-9]+' "$log" | head -1 || true)
        [ -n "$url" ] && break
        sleep 0.1
    done
    [ -n "$url" ] || { echo "server did not come up; log:"; cat "$log"; exit 1; }
    echo "$url"
}

client() { "$BIN/mlpsim-client" --server "$@"; }

# --- 1+2: byte-identical result, live event stream -----------------------
echo "== submit over HTTP, compare against the CLI run path"
"$BIN/fig5" --accesses 1500 -j 2 >"$WORK/cli.txt"

URL=$(start_server "$WORK/serve.log" --data-dir "$WORK/data")
ID=$(client "$URL" submit '{"kind":"fig5","accesses":1500,"jobs":2}')
timeout 120 "$BIN/mlpsim-client" --server "$URL" watch "$ID" >"$WORK/events.ndjson"
grep -q '"type":"run_start"' "$WORK/events.ndjson"
grep -q '"type":"run_end"' "$WORK/events.ndjson"
client "$URL" result "$ID" >"$WORK/http.txt"
cmp "$WORK/cli.txt" "$WORK/http.txt"
echo "   byte-identical ($(wc -c <"$WORK/cli.txt") bytes)"

# The completed job must show up in the Prometheus scrape: at least one
# wall-time histogram bucket, plus a consistent _count.
echo "== live /metrics scrape carries the job-latency histogram"
client "$URL" metrics >"$WORK/metrics.txt"
grep -q 'mlpsim_job_wall_time_ms_bucket{le="+Inf"} 1' "$WORK/metrics.txt"
grep -q 'mlpsim_job_wall_time_ms_count 1' "$WORK/metrics.txt"
grep -q 'mlpsim_job_queue_wait_ms_count 1' "$WORK/metrics.txt"
echo "   histogram families present"

# --- 2b: request tracing end-to-end ---------------------------------------
echo "== injected traceparent propagates through spans, recorder, access log"
TP="00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
OUT=$(client "$URL" submit --traceparent "$TP" '{"kind":"fig5","accesses":600,"jobs":1}')
TID=$(echo "$OUT" | awk '{print $1}')
TRACE=$(echo "$OUT" | awk '{print $2}')
[ "$TRACE" = "4bf92f3577b34da6a3ce929d0e0e4736" ] || {
    echo "submit did not inherit the injected trace id: $OUT"; exit 1; }
timeout 60 "$BIN/mlpsim-client" --server "$URL" wait "$TID" | grep -q done
sleep 0.3 # the trace publishes just after the job flips terminal

# The flight recorder serves the span tree under the injected id, and the
# tree carries the full request path.
client "$URL" traces "$TRACE" >"$WORK/trace.json"
for span in request parse admission journal_append queue_wait run; do
    grep -q "\"$span\"" "$WORK/trace.json" || {
        echo "span $span missing from trace:"; cat "$WORK/trace.json"; exit 1; }
done
grep -q 'run(cell=' "$WORK/trace.json"

# The Chrome export of the same trace is a trace-event document.
client "$URL" traces "$TRACE" --chrome >"$WORK/trace_chrome.json"
grep -q 'traceEvents' "$WORK/trace_chrome.json"
grep -q '"ph"' "$WORK/trace_chrome.json"

# The structured access log on stderr carries the propagated trace id.
grep '"kind":"access"' "$WORK/serve.log" | grep -q "$TRACE"

# telemetry-report digests the full recorder dump.
client "$URL" traces >"$WORK/traces.json"
"$BIN/telemetry-report" --traces "$WORK/traces.json" >"$WORK/traces_report.txt"
grep -q "Traces" "$WORK/traces_report.txt"

# Per-phase request histograms appear on the scrape.
client "$URL" metrics >"$WORK/metrics2.txt"
grep -q 'mlpsim_request_phase_queue_wait_ms_count' "$WORK/metrics2.txt"
grep -q 'mlpsim_request_phase_run_ms_count' "$WORK/metrics2.txt"
echo "   trace id end-to-end: span tree, chrome export, access log, histograms"

# --- 3: cancel a running job ---------------------------------------------
echo "== cancel a running job"
SLOW=$(client "$URL" submit '{"kind":"sweep","accesses":60000}')
sleep 0.3 # let the scheduler pick it up
client "$URL" cancel "$SLOW" >/dev/null
timeout 60 "$BIN/mlpsim-client" --server "$URL" wait "$SLOW" | grep -q cancelled
echo "   cancelled"
client "$URL" drain >/dev/null

# --- 4: backpressure ------------------------------------------------------
echo "== zero-capacity queue backpressures with 429"
URL=$(start_server "$WORK/full.log" --data-dir "$WORK/full" --queue 0 --retry-after 9)
if OUT=$(client "$URL" submit '{"kind":"fig5","accesses":100}' 2>&1); then
    echo "expected rejection, got: $OUT"
    exit 1
fi
echo "$OUT" | grep -q 429
client "$URL" drain >/dev/null
echo "   rejected with 429"

# --- 5: kill -9 a loaded server, restart, lose nothing -------------------
echo "== kill -9 with a 10-job queue, restart, resume"
URL=$(start_server "$WORK/crash.log" --data-dir "$WORK/crash" --queue 32)
CRASH_PID=$(cat "$WORK/last.pid")

FIRST=$(client "$URL" submit '{"kind":"fig5","accesses":400}')
timeout 60 "$BIN/mlpsim-client" --server "$URL" wait "$FIRST" | grep -q done
client "$URL" result "$FIRST" >"$WORK/first_before.txt"

RUNNING=$(client "$URL" submit '{"kind":"sweep","accesses":30000}')
QUEUED=()
for _ in $(seq 1 10); do
    QUEUED+=("$(client "$URL" submit \
        '{"kind":"sweep","benches":["mcf"],"policies":["lru"],"accesses":500}')")
done
sleep 0.3 # let the running job start and its start-op hit the journal
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true

URL=$(start_server "$WORK/restart.log" --data-dir "$WORK/crash")
JOBS=$(client "$URL" list | grep -o '"id":' | wc -l)
[ "$JOBS" -eq 12 ] || { echo "expected 12 recovered jobs, got $JOBS"; exit 1; }

# Completed result is re-served from disk, byte-identical.
client "$URL" result "$FIRST" >"$WORK/first_after.txt"
cmp "$WORK/first_before.txt" "$WORK/first_after.txt"

# The killed-while-running job and every queued job complete.
timeout 300 "$BIN/mlpsim-client" --server "$URL" wait "$RUNNING" | grep -q done
for id in "${QUEUED[@]}"; do
    timeout 120 "$BIN/mlpsim-client" --server "$URL" wait "$id" | grep -q done
done
client "$URL" drain >/dev/null
echo "   12/12 jobs recovered; completed result re-served byte-identical"

echo "serve smoke: OK"
