//! Hybrid replacement in action: a program with alternating phases where
//! no fixed policy wins, and SBAR's sampled contest picks the right one
//! per phase.
//!
//! Run with: `cargo run --release --example adaptive_phases`

use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::spec::SpecBench;

fn main() {
    // ammp's synthetic stand-in alternates an mcf-like pointer phase
    // (LIN-friendly) with a parser-like transient phase (LRU-friendly).
    let trace = SpecBench::Ammp.generate(420_000, 42);

    let mut results = Vec::new();
    for policy in [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ] {
        let mut cfg = SystemConfig::baseline(policy);
        cfg.sample_interval = Some(1_500_000);
        let r = System::new(cfg).run(trace.iter());
        results.push(r);
    }
    let (lru, lin, sbar) = (&results[0], &results[1], &results[2]);

    println!(
        "whole-run IPC: lru {:.3} | lin {:.3} | sbar {:.3}",
        lru.ipc(),
        lin.ipc(),
        sbar.ipc()
    );
    if let Some(dbg) = &sbar.policy_debug {
        println!("sbar internals: {dbg}");
    }
    println!("\nIPC per 1.5M-instruction interval (watch the lead flip and SBAR follow):\n");
    println!(
        "{:>4} {:>8} {:>8} {:>8}  winner",
        "int", "lru", "lin", "sbar"
    );
    let n = lru
        .samples
        .len()
        .min(lin.samples.len())
        .min(sbar.samples.len());
    for i in 0..n {
        let (a, b, c) = (lru.samples[i].ipc, lin.samples[i].ipc, sbar.samples[i].ipc);
        let lead = if (a - b).abs() < 0.02 {
            "~tie"
        } else if a > b {
            "LRU phase"
        } else {
            "LIN phase"
        };
        let tracked = if (c - a.max(b)).abs() <= (c - a.min(b)).abs() {
            "sbar tracks it"
        } else {
            ""
        };
        println!("{i:4} {a:8.3} {b:8.3} {c:8.3}  {lead:10} {tracked}");
    }
    println!(
        "\nSBAR improves on LRU by {:+.1}% while pure LIN manages {:+.1}% — dynamic\n\
         selection beats either fixed policy when the program has phases (paper §7.1).",
        (sbar.ipc() / lru.ipc() - 1.0) * 100.0,
        (lin.ipc() / lru.ipc() - 1.0) * 100.0
    );
}
