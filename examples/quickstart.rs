//! Quickstart: simulate one workload under LRU and under MLP-aware
//! replacement, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::spec::SpecBench;

fn main() {
    // 1. Get a memory trace. Here: a synthetic slice of the mcf-like
    //    pointer-chasing workload (300k memory accesses, seeded).
    let trace = SpecBench::Mcf.generate(300_000, 7);
    println!(
        "trace: {} accesses, {} instructions, {} distinct lines",
        trace.len(),
        trace.instructions(),
        trace.unique_lines()
    );

    // 2. Run it through the paper's baseline machine (8-wide OoO core,
    //    128-entry window, 16KB L1, 1MB 16-way L2, 444-cycle memory).
    let lru = System::new(SystemConfig::baseline(PolicyKind::Lru)).run(trace.iter());
    let lin = System::new(SystemConfig::baseline(PolicyKind::lin4())).run(trace.iter());
    let sbar = System::new(SystemConfig::baseline(PolicyKind::sbar_default())).run(trace.iter());

    // 3. Compare. LIN keeps blocks whose misses were expensive (isolated);
    //    mcf's isolated pointer loads fit in the cache once protected.
    for r in [&lru, &lin, &sbar] {
        println!(
            "{:10}  IPC {:.3}   L2 misses {:6}   mean miss cost {:5.1} cycles   isolated misses {:4.1}%",
            r.policy,
            r.ipc(),
            r.l2.misses,
            r.mean_cost(),
            r.cost_hist.percent(7),
        );
    }
    let gain = (lin.ipc() / lru.ipc() - 1.0) * 100.0;
    println!(
        "\nLIN improves IPC by {gain:+.1}% while serving {} fewer misses.",
        lru.l2.misses as i64 - lin.l2.misses as i64
    );
}
