//! Building a custom workload with the generator DSL: a database-style
//! scenario where an index walk (pointer chasing, isolated misses)
//! competes with a table scan (streaming, parallel misses) for the L2.
//!
//! Run with: `cargo run --release --example pointer_chase`

use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::gen::activity::Activity;
use mlpsim::trace::gen::region::{Order, Region};
use mlpsim::trace::gen::schedule::Schedule;

fn main() {
    // The "index": 6k cache lines chased one isolated load at a time.
    // Each miss stalls the pipeline for a full memory round trip.
    let index_walk = Activity::Isolated {
        region: Region::new(0, 6_000, Order::Random),
    };
    // The "table": a huge scan that touches eight new lines per burst;
    // its misses overlap and cost ~1/8th each.
    let table_scan = Activity::Burst {
        region: Region::new(1 << 24, 400_000, Order::Sequential),
        width: 8,
        spacing: 192,
    };
    // The query loop's working registers: a small hot structure.
    let locals = Activity::Hot {
        region: Region::new(2 << 24, 256, Order::Sequential),
        run: 12,
        gap: 2,
        store_pct: 25,
    };

    let mut schedule = Schedule::single(vec![(index_walk, 6), (table_scan, 3), (locals, 1)]);
    let trace = schedule.generate(150_000, 99);

    println!("A table scan wants to flush the cache; the index wants to live there.\n");
    println!(
        "{:10} {:>8} {:>10} {:>12} {:>16}",
        "policy", "IPC", "L2 misses", "mean cost", "isolated misses"
    );
    let mut base_ipc = None;
    for policy in [
        PolicyKind::Lru,
        PolicyKind::lin4(),
        PolicyKind::sbar_default(),
    ] {
        let r = System::new(SystemConfig::baseline(policy)).run(trace.iter());
        println!(
            "{:10} {:8.3} {:10} {:12.1} {:15.1}%",
            r.policy,
            r.ipc(),
            r.l2.misses,
            r.mean_cost(),
            r.cost_hist.percent(7)
        );
        let b = *base_ipc.get_or_insert(r.ipc());
        if r.ipc() != b {
            println!("{:21}({:+.1}% vs LRU)", "", (r.ipc() / b - 1.0) * 100.0);
        }
    }
    println!(
        "\nLRU lets the scan evict the index (every index load becomes a 444-cycle\n\
         stall). LIN sees the index blocks' high mlp-cost and pins them: the scan\n\
         still misses, but eight-at-a-time — exactly the trade the paper argues for."
    );
}
