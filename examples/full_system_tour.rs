//! A tour of the optional substrates: instruction fetch, wrong-path
//! traffic, and next-line prefetching layered on top of the baseline
//! machine, one at a time and then all together.
//!
//! Run with: `cargo run --release --example full_system_tour`

use mlpsim::cpu::icache::IcacheConfig;
use mlpsim::cpu::prefetch::PrefetchConfig;
use mlpsim::cpu::wrongpath::WrongPathConfig;
use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::spec::SpecBench;

fn main() {
    let trace = SpecBench::Mcf.generate(150_000, 42);

    let configure = |icache: bool, wrong_path: bool, prefetch: bool| {
        let mut cfg = SystemConfig::baseline(PolicyKind::sbar_default());
        if icache {
            cfg.icache = Some(IcacheConfig::baseline(400)); // 25 KB of code
        }
        if wrong_path {
            cfg.wrong_path = Some(WrongPathConfig::baseline());
        }
        if prefetch {
            cfg.prefetch = Some(PrefetchConfig { degree: 2 });
        }
        cfg
    };

    println!(
        "{:28} {:>7} {:>9} {:>8} {:>9} {:>9}",
        "configuration", "IPC", "L2 miss", "I-miss", "wp-miss", "prefetch"
    );
    for (label, ic, wp, pf) in [
        ("baseline", false, false, false),
        ("+ instruction fetch", true, false, false),
        ("+ wrong-path traffic", false, true, false),
        ("+ next-line prefetch", false, false, true),
        ("everything on", true, true, true),
    ] {
        let r = System::new(configure(ic, wp, pf)).run(trace.iter());
        println!(
            "{label:28} {:7.3} {:9} {:8} {:9} {:9}",
            r.ipc(),
            r.l2.misses,
            r.icache.misses,
            r.wrong_path_misses,
            r.prefetches_issued,
        );
    }
    println!(
        "\nEach substrate interacts with the MLP-cost machinery the way the paper\n\
         prescribes: I-misses are demand misses, wrong-path misses are demand only\n\
         until the branch resolves, and prefetches are non-demand until a real\n\
         access merges into them."
    );
}
