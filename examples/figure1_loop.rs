//! The paper's Figure-1 argument, narrated: on the P/S-block loop, the
//! miss-count-optimal policy (Belady's OPT) stalls the processor twice as
//! often as a simple MLP-aware policy, even though it misses less.
//!
//! Run with: `cargo run --release --example figure1_loop`

use mlpsim::cache::addr::{Geometry, LineAddr};
use mlpsim::cache::belady::BeladyEngine;
use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::figure1::{figure1_lines, figure1_trace, P_BLOCKS, S_BLOCKS};

fn main() {
    println!("The loop touches P-blocks {P_BLOCKS:?} in tight bursts (parallel misses)");
    println!("and S-blocks {S_BLOCKS:?} in separate window intervals (isolated misses).\n");

    let iterations = 100;
    let trace = figure1_trace(iterations);
    let cache = Geometry::from_sets(1, 4, 64); // "space for four cache blocks"

    let cfg = |policy| {
        let mut c = SystemConfig::baseline(policy);
        c.l1 = None;
        c.l2 = cache;
        c
    };

    let opt_oracle =
        BeladyEngine::from_accesses(figure1_lines(iterations).into_iter().map(LineAddr));
    let runs = [
        (
            "Belady's OPT",
            System::with_l2_engine(cfg(PolicyKind::Lru), Box::new(opt_oracle)),
        ),
        ("LRU", System::new(cfg(PolicyKind::Lru))),
        ("MLP-aware LIN", System::new(cfg(PolicyKind::lin4()))),
    ];
    println!(
        "{:14} {:>10} {:>14} {:>10}",
        "policy", "misses", "stall events", "cycles"
    );
    for (name, system) in runs {
        let r = system.run(trace.iter());
        println!(
            "{:14} {:10} {:14} {:10}",
            name, r.l2.misses, r.stall_episodes, r.cycles
        );
    }
    println!(
        "\nOPT minimizes misses (4/iter) but eats 4 long-latency stalls per iteration;\n\
         LIN accepts 6 misses but groups them into 2 parallel stalls — and wins on time."
    );
}
