//! Explore any benchmark under any policy from the command line.
//!
//! Usage:
//! `cargo run --release --example policy_explorer -- [bench] [policy] [accesses]`
//! where `bench` is a SPEC short name (default `mcf`) and `policy` is one
//! of `lru`, `fifo`, `random`, `lin1`..`lin4`, `bcl`, `sbar`, `cbs-local`,
//! `cbs-global` (default `lin4`).

use mlpsim::cpu::{PolicyKind, System, SystemConfig};
use mlpsim::trace::spec::SpecBench;

fn parse_policy(s: &str) -> Option<PolicyKind> {
    Some(match s {
        "lru" => PolicyKind::Lru,
        "fifo" => PolicyKind::Fifo,
        "random" => PolicyKind::Random { seed: 1 },
        "lin1" => PolicyKind::Lin { lambda: 1 },
        "lin2" => PolicyKind::Lin { lambda: 2 },
        "lin3" => PolicyKind::Lin { lambda: 3 },
        "lin4" | "lin" => PolicyKind::lin4(),
        "bcl" => PolicyKind::Bcl(mlpsim::core::bcl::BclConfig::default_config()),
        "sbar" => PolicyKind::sbar_default(),
        "cbs-local" => PolicyKind::CbsLocal,
        "cbs-global" => PolicyKind::CbsGlobal,
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .map(|s| SpecBench::from_name(s).expect("unknown benchmark"))
        .unwrap_or(SpecBench::Mcf);
    let policy = args
        .get(2)
        .map(|s| parse_policy(s).expect("unknown policy"))
        .unwrap_or(PolicyKind::lin4());
    let accesses: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    let trace = bench.generate(accesses, 42);
    let r = System::new(SystemConfig::baseline(policy)).run(trace.iter());

    println!("benchmark {bench} under {}:", r.policy);
    println!("  instructions       {:>12}", r.instructions);
    println!("  cycles             {:>12}", r.cycles);
    println!("  IPC                {:>12.3}", r.ipc());
    println!("  L1 hits/misses     {:>12} / {}", r.l1.hits, r.l1.misses);
    println!("  L2 hits/misses     {:>12} / {}", r.l2.hits, r.l2.misses);
    println!("  L2 MPKI            {:>12.2}", r.l2_mpki());
    println!("  compulsory misses  {:>11.1}%", r.compulsory_pct());
    println!("  writebacks         {:>12}", r.l2.writebacks);
    println!("  peak MLP           {:>12}", r.peak_mlp);
    println!("  mem stall cycles   {:>12}", r.mem_stall_cycles);
    println!("  long stalls        {:>12}", r.stall_episodes);
    println!("  bank conflicts     {:>12}", r.mem.dram.bank_conflicts);
    println!(
        "  bus contention     {:>12} cycles",
        r.mem.bus.contention_cycles
    );
    println!("  mlp-cost histogram {}", r.cost_hist.render_row());
    println!(
        "  cost delta         {:.0}% <60cy, avg {:.0} cycles over {} samples",
        r.deltas.pct_lt60(),
        r.deltas.average(),
        r.deltas.count()
    );
    if let Some(dbg) = &r.policy_debug {
        println!("  policy internals   {dbg}");
    }
}
